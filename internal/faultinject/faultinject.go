// Package faultinject provides a deterministic, seed-keyed fault plan for
// the checker pipeline. The paper's real-world substrate is flaky:
// make.cross toolchains break mid-study, configuration generation fails
// for some architectures, and pathological builds stall (§II-A, §V-C).
// Our virtual substrate never fails on its own, so this package injects
// those failures on purpose — transient preprocessor failures, config
// generation failures, truncated .i output, cross-compilers that break
// mid-run, and virtual-time stalls — so the resilience layer (retries,
// circuit breaker, budgets) can be exercised and chaos-tested.
//
// Every decision is a pure function of (Seed, scope, operation key,
// attempt number), using the same FNV-jitter discipline as
// internal/vclock: identical runs see identical faults, and a retried
// operation rolls a fresh decision so transient faults really are
// transient. The zero Plan injects nothing and costs nothing: New returns
// a nil *Injector, and every Injector method is nil-receiver safe.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Kind classifies an injected fault.
type Kind int

// Fault kinds.
const (
	// KindPreprocess is a transient preprocessor (.i / .o front end)
	// failure: the invocation fails this attempt but may succeed on retry.
	KindPreprocess Kind = iota + 1
	// KindConfig is a transient configuration-generation failure (a failed
	// `make allyesconfig` / defconfig run).
	KindConfig
	// KindTruncate truncates a .i file's text mid-stream, as a toolchain
	// crash or full disk would. Truncation can hide mutation witnesses but
	// can never fabricate one.
	KindTruncate
	// KindArchBreak breaks an architecture's cross-compiler permanently
	// partway through a run (the paper's make.cross breakage, §II-A).
	KindArchBreak
	// KindStall adds a virtual-time stall to an invocation.
	KindStall
)

func (k Kind) String() string {
	switch k {
	case KindPreprocess:
		return "preprocess"
	case KindConfig:
		return "config"
	case KindTruncate:
		return "truncate"
	case KindArchBreak:
		return "arch-break"
	case KindStall:
		return "stall"
	default:
		return "unknown"
	}
}

// Plan is a deterministic fault plan. Rates are probabilities in [0, 1]
// applied per operation attempt. The zero value injects no faults.
type Plan struct {
	// Seed decorrelates fault patterns between plans.
	Seed uint64

	// PreprocessRate makes MakeI/MakeO attempts fail transiently.
	PreprocessRate float64
	// ConfigRate makes configuration generation fail transiently.
	ConfigRate float64
	// TruncateRate truncates successful .i output.
	TruncateRate float64
	// ArchBreakRate selects architectures whose cross-compiler breaks
	// permanently after a few uses.
	ArchBreakRate float64
	// StallRate adds StallDuration of virtual time to an invocation.
	StallRate float64
	// StallDuration is the virtual-time cost of one stall.
	StallDuration time.Duration
}

// Enabled reports whether the plan can inject anything.
func (p Plan) Enabled() bool {
	return p.PreprocessRate > 0 || p.ConfigRate > 0 || p.TruncateRate > 0 ||
		p.ArchBreakRate > 0 || (p.StallRate > 0 && p.StallDuration > 0)
}

// Uniform returns a plan applying rate to every fault class, with a 2s
// stall — a convenient knob for CLIs and chaos sweeps.
func Uniform(seed uint64, rate float64) Plan {
	return Plan{
		Seed:           seed,
		PreprocessRate: rate,
		ConfigRate:     rate,
		TruncateRate:   rate,
		ArchBreakRate:  rate,
		StallRate:      rate,
		StallDuration:  2 * time.Second,
	}
}

// Event records one injected fault, in injection order.
type Event struct {
	// Kind is the fault class.
	Kind Kind
	// Op identifies the faulted operation (arch:file, arch name, ...).
	Op string
}

// Injector applies a Plan to one checker run. The scope (typically the
// commit id) decorrelates fault patterns between patches under the same
// plan. Methods are safe for concurrent use, though a checker run drives
// them sequentially; determinism requires a deterministic operation
// sequence, which a single run provides.
type Injector struct {
	plan  Plan
	scope string

	mu       sync.Mutex
	attempts map[string]int
	archUses map[string]int
	// archBreakAt caches each arch's break point: -1 = never breaks,
	// otherwise the number of uses after which it is broken.
	archBreakAt map[string]int
	events      []Event
}

// New builds an injector for one run. It returns nil — a valid, inert
// injector — when the plan injects nothing, so the fault-free path stays
// zero-cost.
func New(plan Plan, scope string) *Injector {
	if !plan.Enabled() {
		return nil
	}
	return &Injector{
		plan:        plan,
		scope:       scope,
		attempts:    make(map[string]int),
		archUses:    make(map[string]int),
		archBreakAt: make(map[string]int),
	}
}

// roll returns a deterministic value in [0, 1) for the key, mirroring
// vclock's FNV jitter.
func (in *Injector) roll(key string) float64 {
	h := fnv.New64a()
	var seedBytes [8]byte
	for i := 0; i < 8; i++ {
		seedBytes[i] = byte(in.plan.Seed >> (8 * i))
	}
	_, _ = h.Write(seedBytes[:])
	_, _ = h.Write([]byte(in.scope))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return float64(h.Sum64()%10_000) / 10_000
}

// decide rolls one fault decision for an operation attempt, recording an
// event when it fires. Each call for the same (kind, op) advances the
// attempt counter, so retried operations roll fresh decisions.
func (in *Injector) decide(kind Kind, rate float64, op string) bool {
	if in == nil || rate <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	key := kind.String() + ":" + op
	attempt := in.attempts[key]
	in.attempts[key] = attempt + 1
	if in.roll(fmt.Sprintf("%s#%d", key, attempt)) >= rate {
		return false
	}
	in.events = append(in.events, Event{Kind: kind, Op: op})
	return true
}

// FailPreprocess reports whether this preprocess/compile attempt fails
// transiently.
func (in *Injector) FailPreprocess(op string) bool {
	if in == nil {
		return false
	}
	return in.decide(KindPreprocess, in.plan.PreprocessRate, op)
}

// FailConfig reports whether this configuration-generation attempt fails
// transiently.
func (in *Injector) FailConfig(op string) bool {
	if in == nil {
		return false
	}
	return in.decide(KindConfig, in.plan.ConfigRate, op)
}

// TruncateI reports whether this .i output is truncated.
func (in *Injector) TruncateI(op string) bool {
	if in == nil {
		return false
	}
	return in.decide(KindTruncate, in.plan.TruncateRate, op)
}

// Stall returns the extra virtual time this invocation stalls for (zero
// when no stall fires).
func (in *Injector) Stall(op string) time.Duration {
	if in == nil || in.plan.StallDuration <= 0 {
		return 0
	}
	if !in.decide(KindStall, in.plan.StallRate, op) {
		return 0
	}
	return in.plan.StallDuration
}

// ArchBroken records one use of an architecture's cross-compiler and
// reports whether it has broken by now. Breakage is permanent: once an
// arch breaks it stays broken for the rest of the run.
func (in *Injector) ArchBroken(arch string) bool {
	if in == nil || in.plan.ArchBreakRate <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	breakAt, ok := in.archBreakAt[arch]
	if !ok {
		breakAt = -1
		if in.roll("archbreak:"+arch) < in.plan.ArchBreakRate {
			// Break after 1-4 successful uses: mid-run, never before the
			// arch has worked at least once.
			breakAt = 1 + int(in.roll("archbreakat:"+arch)*4)
		}
		in.archBreakAt[arch] = breakAt
	}
	in.archUses[arch]++
	if breakAt < 0 || in.archUses[arch] <= breakAt {
		return false
	}
	if in.archUses[arch] == breakAt+1 {
		in.events = append(in.events, Event{Kind: KindArchBreak, Op: arch})
	}
	return true
}

// EventCount returns how many faults have been injected so far, so the
// tracing layer can snapshot-and-diff around one operation without
// copying the whole event list.
func (in *Injector) EventCount() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.events)
}

// EventsSince returns the faults injected after the first n, in order
// (n from a prior EventCount call).
func (in *Injector) EventsSince(n int) []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if n < 0 || n > len(in.events) {
		n = len(in.events)
	}
	out := make([]Event, len(in.events)-n)
	copy(out, in.events[n:])
	return out
}

// Events returns the faults injected so far, in order.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}
