package faultinject

import (
	"testing"
	"time"
)

func TestZeroPlanDisabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Fatal("zero plan must be disabled")
	}
	if in := New(Plan{}, "c1"); in != nil {
		t.Fatalf("New(zero plan) = %v, want nil", in)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.FailPreprocess("x") || in.FailConfig("x") || in.TruncateI("x") || in.ArchBroken("arm") {
		t.Error("nil injector must inject nothing")
	}
	if d := in.Stall("x"); d != 0 {
		t.Errorf("nil Stall = %v", d)
	}
	if ev := in.Events(); ev != nil {
		t.Errorf("nil Events = %v", ev)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]bool, []Event) {
		in := New(Uniform(7, 0.5), "commit-abc")
		var got []bool
		for i := 0; i < 40; i++ {
			got = append(got, in.FailPreprocess("x86_64:i:f.c"))
			got = append(got, in.FailConfig("arm:allyes"))
			got = append(got, in.TruncateI("x86_64:i:f.c"))
			got = append(got, in.ArchBroken("arm"))
			got = append(got, in.Stall("op") > 0)
		}
		return got, in.Events()
	}
	a, evA := run()
	b, evB := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical runs", i)
		}
	}
	if len(evA) != len(evB) {
		t.Fatalf("event counts differ: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, evA[i], evB[i])
		}
	}
}

func TestScopeAndSeedDecorrelate(t *testing.T) {
	decisions := func(seed uint64, scope string) []bool {
		in := New(Uniform(seed, 0.5), scope)
		var got []bool
		for i := 0; i < 64; i++ {
			got = append(got, in.FailPreprocess("x86_64:i:f.c"))
		}
		return got
	}
	same := func(a, b []bool) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	base := decisions(1, "c1")
	if same(base, decisions(1, "c2")) {
		t.Error("different scopes produced identical fault patterns")
	}
	if same(base, decisions(2, "c1")) {
		t.Error("different seeds produced identical fault patterns")
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	in := New(Plan{Seed: 3, PreprocessRate: 1}, "c")
	for i := 0; i < 10; i++ {
		if !in.FailPreprocess("op") {
			t.Fatalf("rate 1 did not fire on attempt %d", i)
		}
	}
	if got := len(in.Events()); got != 10 {
		t.Errorf("events = %d, want 10", got)
	}
}

func TestRetriesRollFreshDecisions(t *testing.T) {
	// With rate 0.5, the same op must not fail on every one of many
	// attempts — each attempt rolls a fresh decision.
	in := New(Plan{Seed: 5, PreprocessRate: 0.5}, "c")
	failed, passed := 0, 0
	for i := 0; i < 64; i++ {
		if in.FailPreprocess("same-op") {
			failed++
		} else {
			passed++
		}
	}
	if failed == 0 || passed == 0 {
		t.Errorf("attempts all alike (failed=%d passed=%d): attempt counter not advancing", failed, passed)
	}
}

func TestArchBreakIsPermanentAndMidRun(t *testing.T) {
	in := New(Plan{Seed: 11, ArchBreakRate: 1}, "c")
	// First use never fails (the arch worked at least once).
	if in.ArchBroken("mips") {
		t.Fatal("arch broke on first use")
	}
	brokeAt := 0
	for i := 2; i <= 10; i++ {
		if in.ArchBroken("mips") {
			brokeAt = i
			break
		}
	}
	if brokeAt == 0 {
		t.Fatal("rate-1 arch never broke within 10 uses")
	}
	for i := 0; i < 5; i++ {
		if !in.ArchBroken("mips") {
			t.Fatal("arch recovered after breaking; breakage must be permanent")
		}
	}
	// Exactly one arch-break event regardless of how often it is observed.
	n := 0
	for _, ev := range in.Events() {
		if ev.Kind == KindArchBreak && ev.Op == "mips" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("arch-break events = %d, want 1", n)
	}
}

func TestStallDuration(t *testing.T) {
	in := New(Plan{Seed: 2, StallRate: 1, StallDuration: 3 * time.Second}, "c")
	if d := in.Stall("op"); d != 3*time.Second {
		t.Errorf("Stall = %v, want 3s", d)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindPreprocess: "preprocess",
		KindConfig:     "config",
		KindTruncate:   "truncate",
		KindArchBreak:  "arch-break",
		KindStall:      "stall",
		Kind(99):       "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
