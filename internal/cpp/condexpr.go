package cpp

import (
	"fmt"
	"strconv"
	"strings"
)

// This file adds a *symbolic* mode to the #if expression machinery: instead
// of evaluating a controlling expression against the current macro table
// (expr.go), ParseCondExpr keeps `defined(NAME)` operators and identifiers
// as leaves. Static consumers — presence-condition analysis, escape
// classification — reason about these trees over an unknown configuration,
// where "is CONFIG_FOO defined" is a free variable rather than a fact.

// CondExpr is one node of a symbolically parsed #if/#elif controlling
// expression.
type CondExpr interface {
	String() string
	condExpr()
}

// CondNum is an integer literal; character constants fold to their values.
type CondNum struct{ Val int64 }

// CondDefined is a `defined(NAME)` or `defined NAME` operator.
type CondDefined struct{ Name string }

// CondIdent is a bare identifier: a macro whose expansion is unknown at
// parse time (the dynamic evaluator would expand it, or fold it to 0).
type CondIdent struct{ Name string }

// CondUnary is !x, ~x, -x or +x.
type CondUnary struct {
	Op string
	X  CondExpr
}

// CondBinary is a binary operator application.
type CondBinary struct {
	Op   string
	L, R CondExpr
}

// CondTernary is c ? t : f.
type CondTernary struct{ C, T, F CondExpr }

func (CondNum) condExpr()     {}
func (CondDefined) condExpr() {}
func (CondIdent) condExpr()   {}
func (CondUnary) condExpr()   {}
func (CondBinary) condExpr()  {}
func (CondTernary) condExpr() {}

func (e CondNum) String() string     { return strconv.FormatInt(e.Val, 10) }
func (e CondDefined) String() string { return "defined(" + e.Name + ")" }
func (e CondIdent) String() string   { return e.Name }
func (e CondUnary) String() string   { return e.Op + e.X.String() }
func (e CondBinary) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}
func (e CondTernary) String() string {
	return "(" + e.C.String() + " ? " + e.T.String() + " : " + e.F.String() + ")"
}

// ParseCondExpr parses the argument of a #if or #elif symbolically. It
// reuses the Lex tokenization and the binary-operator precedence table of
// the dynamic evaluator, and never panics: malformed input yields an error.
func ParseCondExpr(src string) (CondExpr, error) {
	p := &condParser{ts: Lex(src)}
	e, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if t, ok := p.peek(); ok {
		return nil, fmt.Errorf("cpp: unexpected token %q in #if expression", t.Text)
	}
	return e, nil
}

// condParser mirrors exprParser but builds CondExpr trees and needs no
// preprocessor state.
type condParser struct {
	ts  []Token
	pos int
}

func (p *condParser) peek() (Token, bool) {
	if p.pos < len(p.ts) {
		return p.ts[p.pos], true
	}
	return Token{}, false
}

func (p *condParser) next() (Token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *condParser) ternary() (CondExpr, error) {
	cond, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	t, ok := p.peek()
	if !ok || t.Kind != KindPunct || t.Text != "?" {
		return cond, nil
	}
	p.pos++
	thenE, err := p.ternary()
	if err != nil {
		return nil, err
	}
	t, ok = p.next()
	if !ok || t.Text != ":" {
		return nil, fmt.Errorf("cpp: missing ':' in ternary expression")
	}
	elseE, err := p.ternary()
	if err != nil {
		return nil, err
	}
	return CondTernary{C: cond, T: thenE, F: elseE}, nil
}

func (p *condParser) binary(minPrec int) (CondExpr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.Kind != KindPunct {
			return lhs, nil
		}
		prec, isOp := binPrec[t.Text]
		if !isOp || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = CondBinary{Op: t.Text, L: lhs, R: rhs}
	}
}

func (p *condParser) unary() (CondExpr, error) {
	t, ok := p.next()
	if !ok {
		return nil, fmt.Errorf("cpp: unexpected end of #if expression")
	}
	switch t.Kind {
	case KindPunct:
		switch t.Text {
		case "!", "~", "-", "+":
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return CondUnary{Op: t.Text, X: x}, nil
		case "(":
			v, err := p.ternary()
			if err != nil {
				return nil, err
			}
			nt, ok := p.next()
			if !ok || nt.Text != ")" {
				return nil, fmt.Errorf("cpp: missing ')' in #if expression")
			}
			return v, nil
		}
	case KindNumber:
		v, err := ppNumberValue(t.Text)
		if err != nil {
			return nil, err
		}
		return CondNum{Val: v}, nil
	case KindChar:
		v, err := charConstValue(t.Text)
		if err != nil {
			return nil, err
		}
		return CondNum{Val: v}, nil
	case KindIdent:
		if t.Text == "defined" {
			return p.definedOp()
		}
		return CondIdent{Name: t.Text}, nil
	}
	return nil, fmt.Errorf("cpp: unexpected token %q in #if expression", t.Text)
}

func (p *condParser) definedOp() (CondExpr, error) {
	t, ok := p.next()
	if !ok {
		return nil, fmt.Errorf("cpp: operator \"defined\" requires an identifier")
	}
	paren := false
	if t.Kind == KindPunct && t.Text == "(" {
		paren = true
		t, ok = p.next()
		if !ok {
			return nil, fmt.Errorf("cpp: operator \"defined\" requires an identifier")
		}
	}
	if t.Kind != KindIdent {
		return nil, fmt.Errorf("cpp: operator \"defined\" requires an identifier")
	}
	name := t.Text
	if paren {
		nt, ok := p.next()
		if !ok || nt.Text != ")" {
			return nil, fmt.Errorf("cpp: missing ')' after \"defined\"")
		}
	}
	return CondDefined{Name: name}, nil
}

// PriorBranch names one earlier branch of the same conditional chain, for
// BranchCondExpr. Kind is the directive name: "if", "ifdef", "ifndef" or
// "elif".
type PriorBranch struct {
	Kind string
	Arg  string
}

// BranchCondExpr builds the full controlling condition of one branch of an
// #if/#elif/#else chain: the branch's own test (none for "else") conjoined
// with the negation of every earlier branch's test. The dynamic
// preprocessor implements exactly this with its `taken` flag; static
// consumers need it spelled out, otherwise an #elif or #else branch is
// evaluated in isolation and its condition over-approximates badly (an
// `#elif defined(B)` after `#ifdef A` is active only under !A && B).
func BranchCondExpr(kind, arg string, prior []PriorBranch) (CondExpr, error) {
	var parts []CondExpr
	for _, pb := range prior {
		own, err := openingCondExpr(pb.Kind, pb.Arg)
		if err != nil {
			return nil, err
		}
		parts = append(parts, CondUnary{Op: "!", X: own})
	}
	if kind != "else" {
		own, err := openingCondExpr(kind, arg)
		if err != nil {
			return nil, err
		}
		parts = append(parts, own)
	}
	if len(parts) == 0 {
		return CondNum{Val: 1}, nil
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = CondBinary{Op: "&&", L: out, R: p}
	}
	return out, nil
}

// openingCondExpr is the condition under which one directive's own test
// holds, ignoring the rest of its chain.
func openingCondExpr(kind, arg string) (CondExpr, error) {
	switch kind {
	case "if", "elif":
		return ParseCondExpr(arg)
	case "ifdef":
		name, err := identArg(kind, arg)
		if err != nil {
			return nil, err
		}
		return CondDefined{Name: name}, nil
	case "ifndef":
		name, err := identArg(kind, arg)
		if err != nil {
			return nil, err
		}
		return CondUnary{Op: "!", X: CondDefined{Name: name}}, nil
	}
	return nil, fmt.Errorf("cpp: %q is not a conditional directive", kind)
}

// identArg extracts the single identifier argument of #ifdef/#ifndef.
// Trailing tokens are tolerated (stray comment remnants), a missing or
// non-identifier argument is not.
func identArg(kind, arg string) (string, error) {
	ts := Lex(arg)
	if len(ts) == 0 || ts[0].Kind != KindIdent {
		return "", fmt.Errorf("cpp: #%s requires an identifier, got %q", kind, arg)
	}
	return ts[0].Text, nil
}

// ppNumberValue converts a pp-number to int64, accepting 0x/octal forms and
// ignoring integer suffixes (u, l, ll, in any case and order).
func ppNumberValue(s string) (int64, error) {
	trimmed := strings.TrimRight(s, "uUlL")
	if trimmed == "" {
		return 0, fmt.Errorf("bad integer %q in #if expression", s)
	}
	v, err := strconv.ParseUint(trimmed, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q in #if expression", s)
	}
	return int64(v), nil
}

// charConstValue evaluates a character constant like 'a' or '\n'.
func charConstValue(s string) (int64, error) {
	if len(s) < 3 || s[0] != '\'' || s[len(s)-1] != '\'' {
		return 0, fmt.Errorf("bad character constant %s", s)
	}
	body := s[1 : len(s)-1]
	if body[0] != '\\' {
		return int64(body[0]), nil
	}
	if len(body) < 2 {
		return 0, fmt.Errorf("bad escape in character constant %s", s)
	}
	switch body[1] {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	default:
		return int64(body[1]), nil
	}
}
