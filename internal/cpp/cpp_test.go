package cpp

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// mapSource is a Source backed by a map.
type mapSource map[string]string

func (m mapSource) ReadFile(p string) (string, bool) {
	c, ok := m[p]
	return c, ok
}

// run preprocesses main.c from the given file set and returns the output.
func run(t *testing.T, files map[string]string, opts Options) Result {
	t.Helper()
	res, err := Preprocess(mapSource(files), "main.c", opts)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	return res
}

// body strips line markers and blank lines, returning the code lines.
func body(res Result) []string {
	var out []string
	for _, ln := range strings.Split(res.Output, "\n") {
		if ln == "" || strings.HasPrefix(ln, "# ") {
			continue
		}
		out = append(out, ln)
	}
	return out
}

func TestPassThrough(t *testing.T) {
	res := run(t, map[string]string{"main.c": "int x = 1;\nint y = 2;\n"}, Options{})
	want := []string{"int x = 1;", "int y = 2;"}
	if got := body(res); !reflect.DeepEqual(got, want) {
		t.Errorf("body = %v, want %v", got, want)
	}
}

func TestObjectMacro(t *testing.T) {
	src := "#define N 42\nint x = N;\n"
	res := run(t, map[string]string{"main.c": src}, Options{})
	if got := body(res); !reflect.DeepEqual(got, []string{"int x = 42;"}) {
		t.Errorf("body = %v", got)
	}
}

func TestFunctionMacroWithArgs(t *testing.T) {
	src := `#define MUX(x) (((x) & 0xf) << 4)
int v = MUX(chan);
`
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := body(res)
	if len(got) != 1 || !strings.Contains(got[0], "(((chan) & 0xf) << 4)") {
		t.Errorf("body = %v", got)
	}
}

func TestNestedMacros(t *testing.T) {
	// Mirrors Fig. 1 of the paper: nested macros inline at use sites.
	src := `#define HI(x) (((x) & 0xf) << 4)
#define LO(x) (((x) & 0xf) << 0)
#define SINGLE(x) (HI(x) | LO(x))
int v = SINGLE(chan);
`
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := body(res)
	if len(got) != 1 || !strings.Contains(got[0], "((((chan) & 0xf) << 4) | (((chan) & 0xf) << 0))") {
		t.Errorf("body = %v", got)
	}
}

func TestRecursiveMacroBlocked(t *testing.T) {
	src := "#define X X + 1\nint v = X;\n"
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := body(res)
	if len(got) != 1 || !strings.Contains(got[0], "X + 1") {
		t.Errorf("self-referential macro: body = %v", got)
	}
}

func TestIndirectRecursionBlocked(t *testing.T) {
	src := "#define A B\n#define B A\nint v = A;\n"
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := body(res)
	if len(got) != 1 || !strings.Contains(got[0], "A") {
		t.Errorf("mutually recursive macros: body = %v", got)
	}
}

func TestStringify(t *testing.T) {
	src := `#define STR(x) #x
const char *s = STR(hello world);
const char *q = STR("quoted");
`
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := body(res)
	if !strings.Contains(got[0], `"hello world"`) {
		t.Errorf("stringify: %v", got[0])
	}
	if !strings.Contains(got[1], `"\"quoted\""`) {
		t.Errorf("stringify escaping: %v", got[1])
	}
}

func TestTokenPaste(t *testing.T) {
	src := `#define GLUE(a, b) a##b
int GLUE(foo, bar) = 1;
#define FIELD(n) reg_##n
int x = FIELD(ctrl);
`
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := body(res)
	if !strings.Contains(got[0], "foobar") {
		t.Errorf("paste: %v", got[0])
	}
	if !strings.Contains(got[1], "reg_ctrl") {
		t.Errorf("paste with literal: %v", got[1])
	}
}

func TestVariadicMacro(t *testing.T) {
	src := `#define pr(fmt, ...) printk(fmt, __VA_ARGS__)
pr("x=%d y=%d", 1, 2);
`
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := body(res)
	if !strings.Contains(got[0], `printk("x=%d y=%d", 1, 2)`) {
		t.Errorf("variadic: %v", got[0])
	}
}

func TestConditionals(t *testing.T) {
	src := `#define A 1
#if A
int yes_a;
#else
int no_a;
#endif
#ifdef B
int yes_b;
#elif A > 0
int elif_taken;
#else
int else_b;
#endif
#ifndef B
int not_b;
#endif
`
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := strings.Join(body(res), "\n")
	for _, want := range []string{"int yes_a;", "int elif_taken;", "int not_b;"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in output:\n%s", want, got)
		}
	}
	for _, notWant := range []string{"no_a", "yes_b", "else_b"} {
		if strings.Contains(got, notWant) {
			t.Errorf("unexpected %q in output:\n%s", notWant, got)
		}
	}
}

func TestIfZeroAndNestedSkipping(t *testing.T) {
	src := `#if 0
#ifdef ANYTHING
int dead1;
#else
int dead2;
#endif
int dead3;
#endif
int alive;
`
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := strings.Join(body(res), "\n")
	if strings.Contains(got, "dead") {
		t.Errorf("#if 0 region leaked: %s", got)
	}
	if !strings.Contains(got, "alive") {
		t.Errorf("missing live code: %s", got)
	}
}

func TestIfExpressionOperators(t *testing.T) {
	tests := []struct {
		expr string
		take bool
	}{
		{"1 + 1 == 2", true},
		{"3 * 4 != 12", false},
		{"(1 << 4) == 16", true},
		{"10 % 3 == 1", true},
		{"!defined(FOO)", true},
		{"defined FOO || defined BAR", true}, // BAR defined below
		{"UNDEFINED_IDENT", false},
		{"UNDEFINED + 1", true},
		{"1 ? 2 : 0", true},
		{"0 ? 2 : 0", false},
		{"~0 & 1", true},
		{"-1 < 0", true},
		{"'A' == 65", true},
		{"0x10 == 16", true},
		{"010 == 8", true},
		{"1UL == 1", true},
		{"0 && (1/0)", false}, // short-circuit suppresses division by zero
		{"1 || (1/0)", true},
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			src := "#define BAR 1\n#if " + tt.expr + "\nint taken;\n#endif\n"
			res := run(t, map[string]string{"main.c": src}, Options{})
			got := strings.Contains(res.Output, "taken")
			if got != tt.take {
				t.Errorf("#if %s: taken = %v, want %v", tt.expr, got, tt.take)
			}
		})
	}
}

func TestIncludeSearchOrder(t *testing.T) {
	files := map[string]string{
		"main.c":              "#include \"local.h\"\n#include <linux/sys.h>\nint v = LOCAL + SYS;\n",
		"local.h":             "#define LOCAL 1\n",
		"include/linux/sys.h": "#define SYS 2\n",
	}
	res := run(t, files, Options{IncludeDirs: []string{"include"}})
	got := body(res)
	if len(got) != 1 || !strings.Contains(got[0], "1 + 2") {
		t.Errorf("include: %v", got)
	}
	if res.Includes != 3 {
		t.Errorf("Includes = %d, want 3", res.Includes)
	}
}

func TestQuotedIncludeRelativeToIncluder(t *testing.T) {
	files := map[string]string{
		"main.c":          "#include <drv/top.h>\nint v = INNER;\n",
		"inc/drv/top.h":   "#include \"inner.h\"\n",
		"inc/drv/inner.h": "#define INNER 7\n",
	}
	res := run(t, files, Options{IncludeDirs: []string{"inc"}})
	if got := body(res); !strings.Contains(strings.Join(got, ""), "7") {
		t.Errorf("relative include: %v", got)
	}
}

func TestIncludeGuards(t *testing.T) {
	files := map[string]string{
		"main.c": "#include \"g.h\"\n#include \"g.h\"\nint v = G;\n",
		"g.h":    "#ifndef G_H\n#define G_H\n#define G 3\n#endif\n",
	}
	res := run(t, files, Options{})
	if got := body(res); !strings.Contains(strings.Join(got, ""), "3") {
		t.Errorf("include guard: %v", got)
	}
}

func TestMissingInclude(t *testing.T) {
	_, err := Preprocess(mapSource{"main.c": "#include <missing.h>\n"}, "main.c", Options{})
	if err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Errorf("missing include err = %v", err)
	}
	var perr *Error
	if !errors.As(err, &perr) {
		t.Fatalf("error type = %T, want *Error", err)
	}
	if perr.File != "main.c" || perr.Line != 1 {
		t.Errorf("error position = %s:%d", perr.File, perr.Line)
	}
}

func TestErrorDirective(t *testing.T) {
	src := "#ifdef BAD\n#error this arch is unsupported\n#endif\nint ok;\n"
	if _, err := Preprocess(mapSource{"main.c": src}, "main.c", Options{}); err != nil {
		t.Errorf("skipped #error should not fire: %v", err)
	}
	_, err := Preprocess(mapSource{"main.c": src}, "main.c", Options{Defines: map[string]string{"BAD": "1"}})
	if err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Errorf("active #error: err = %v", err)
	}
}

func TestWarningDirective(t *testing.T) {
	res := run(t, map[string]string{"main.c": "#warning deprecated api\nint x;\n"}, Options{})
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "deprecated api") {
		t.Errorf("Warnings = %v", res.Warnings)
	}
}

func TestUndef(t *testing.T) {
	src := "#define X 1\n#undef X\n#ifdef X\nint defined_x;\n#endif\nint X;\n"
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := strings.Join(body(res), "\n")
	if strings.Contains(got, "defined_x") {
		t.Errorf("#undef ignored: %s", got)
	}
	if !strings.Contains(got, "int X;") {
		t.Errorf("undef'd name should stay literal: %s", got)
	}
}

func TestUnterminatedIf(t *testing.T) {
	_, err := Preprocess(mapSource{"main.c": "#if 1\nint x;\n"}, "main.c", Options{})
	if err == nil || !strings.Contains(err.Error(), "unterminated") {
		t.Errorf("unterminated #if: err = %v", err)
	}
}

func TestElseWithoutIf(t *testing.T) {
	for _, d := range []string{"#else", "#endif", "#elif 1"} {
		_, err := Preprocess(mapSource{"main.c": d + "\n"}, "main.c", Options{})
		if err == nil {
			t.Errorf("%s without #if should fail", d)
		}
	}
}

func TestLineSplicingInMacro(t *testing.T) {
	src := "#define LONG(x) \\\n\t((x) + \\\n\t 1)\nint v = LONG(2);\n"
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := body(res)
	if len(got) != 1 || !strings.Contains(got[0], "((2) + 1)") {
		t.Errorf("spliced macro: %v", got)
	}
}

func TestCommentsStripped(t *testing.T) {
	src := "int a; // trailing\n/* block */ int b;\nint /* mid */ c;\n/* multi\nline */ int d;\n"
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := strings.Join(body(res), "\n")
	if strings.Contains(got, "trailing") || strings.Contains(got, "block") || strings.Contains(got, "multi") {
		t.Errorf("comments leaked: %s", got)
	}
	for _, want := range []string{"int a;", "int b;", "int c;", "int d;"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q: %s", want, got)
		}
	}
}

func TestCommentMarkersInStringsPreserved(t *testing.T) {
	src := "const char *s = \"not /* a comment */\";\n"
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := body(res)
	if !strings.Contains(got[0], "/* a comment */") {
		t.Errorf("string content damaged: %v", got)
	}
}

// The property JMake depends on (paper §III-A): a mutation token with an
// invalid character survives preprocessing verbatim, both in plain code and
// through macro expansion, but never appears when its region is excluded.
func TestMutationPassThrough(t *testing.T) {
	mut := `@"define:drivers/a.c:49"`
	src := "#define HI(x) ((x) << 4) " + mut + "\nint v = HI(2);\n"
	res := run(t, map[string]string{"main.c": src}, Options{})
	if !strings.Contains(res.Output, mut) {
		t.Errorf("mutation lost through macro expansion:\n%s", res.Output)
	}

	src2 := "@\"other:drivers/a.c:10\"\nint w;\n"
	res2 := run(t, map[string]string{"main.c": src2}, Options{})
	if !strings.Contains(res2.Output, `@"other:drivers/a.c:10"`) {
		t.Errorf("plain mutation lost:\n%s", res2.Output)
	}

	src3 := "#ifdef NOT_SET\n@\"other:drivers/a.c:2\"\nint dead;\n#endif\nint live;\n"
	res3 := run(t, map[string]string{"main.c": src3}, Options{})
	if strings.Contains(res3.Output, "@\"other") {
		t.Errorf("mutation leaked from dead region:\n%s", res3.Output)
	}
}

func TestMutationInUnusedMacroAbsent(t *testing.T) {
	mut := `@"define:drivers/a.c:1"`
	src := "#define UNUSED(x) ((x)+1) " + mut + "\nint v = 2;\n"
	res := run(t, map[string]string{"main.c": src}, Options{})
	if strings.Contains(res.Output, mut) {
		t.Errorf("mutation from unused macro should not appear:\n%s", res.Output)
	}
}

func TestLineMarkers(t *testing.T) {
	files := map[string]string{
		"main.c": "int a;\n#include \"h.h\"\nint b;\n",
		"h.h":    "int in_header;\n",
	}
	res := run(t, files, Options{})
	out := res.Output
	for _, want := range []string{"# 1 \"main.c\"", "# 1 \"h.h\" 1", "# 3 \"main.c\" 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing line marker %q in:\n%s", want, out)
		}
	}
}

func TestLineAndFileMacros(t *testing.T) {
	src := "int a;\nconst char *f = __FILE__;\nint l = __LINE__;\n"
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := strings.Join(body(res), "\n")
	if !strings.Contains(got, `"main.c"`) {
		t.Errorf("__FILE__: %s", got)
	}
	if !strings.Contains(got, "int l = 3;") {
		t.Errorf("__LINE__: %s", got)
	}
}

func TestPredefines(t *testing.T) {
	src := "#ifdef CONFIG_FOO\nint foo_on = CONFIG_FOO;\n#endif\n"
	res := run(t, map[string]string{"main.c": src}, Options{Defines: map[string]string{"CONFIG_FOO": "1"}})
	if got := strings.Join(body(res), ""); !strings.Contains(got, "foo_on = 1") {
		t.Errorf("predefine: %s", got)
	}
}

func TestIncludeDepthLimit(t *testing.T) {
	files := map[string]string{"main.c": "#include \"main.c\"\n"}
	_, err := Preprocess(mapSource(files), "main.c", Options{})
	if err == nil || !strings.Contains(err.Error(), "nested too deeply") {
		t.Errorf("self-include: err = %v", err)
	}
}

func TestMacroArgCountMismatch(t *testing.T) {
	src := "#define F(a, b) a + b\nint v = F(1);\n"
	_, err := Preprocess(mapSource{"main.c": src}, "main.c", Options{})
	if err == nil || !strings.Contains(err.Error(), "requires 2 arguments") {
		t.Errorf("arg mismatch: err = %v", err)
	}
}

func TestFuncMacroWithoutParensStaysLiteral(t *testing.T) {
	src := "#define F(x) x\nint (*fp)(int) = F;\nint v = F(3);\n"
	res := run(t, map[string]string{"main.c": src}, Options{})
	got := body(res)
	if !strings.Contains(got[0], "= F;") {
		t.Errorf("bare func-macro name should stay: %v", got)
	}
	if !strings.Contains(got[1], "= 3;") {
		t.Errorf("call should expand: %v", got)
	}
}

func TestDefinedMacroNames(t *testing.T) {
	src := `#ifndef H
#define H
#define REG_CTRL(x) ((x) << 2)
#define MAX_UNITS 8
/* #define IN_COMMENT 1 */
#endif
#define H
`
	got := DefinedMacroNames(src)
	want := []string{"H", "REG_CTRL", "MAX_UNITS"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DefinedMacroNames = %v, want %v", got, want)
	}
}

func TestInputLinesCounted(t *testing.T) {
	files := map[string]string{
		"main.c": "#include \"h.h\"\nint a;\nint b;\n",
		"h.h":    "int h1;\nint h2;\n",
	}
	res := run(t, files, Options{})
	if res.InputLines != 5 {
		t.Errorf("InputLines = %d, want 5", res.InputLines)
	}
}

func TestLexKinds(t *testing.T) {
	toks := Lex(`ident 0x1f "str" 'c' += @ ...`)
	wantKinds := []Kind{KindIdent, KindNumber, KindString, KindChar, KindPunct, KindOther, KindPunct}
	if len(toks) != len(wantKinds) {
		t.Fatalf("Lex produced %d tokens: %+v", len(toks), toks)
	}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("token %d (%q) kind = %d, want %d", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestRenderTokensSpacing(t *testing.T) {
	// "a + b" must not render as "a+b" when tokens carry WS, and adjacent
	// identifiers must stay separated even without WS flags.
	toks := []Token{
		{Kind: KindIdent, Text: "unsigned"},
		{Kind: KindIdent, Text: "int"},
		{Kind: KindIdent, Text: "x", WS: true},
		{Kind: KindPunct, Text: "="},
		{Kind: KindNumber, Text: "1"},
		{Kind: KindPunct, Text: ";"},
	}
	got := renderTokens(toks)
	if !strings.Contains(got, "unsigned int") {
		t.Errorf("identifiers merged: %q", got)
	}
	if relexed := Lex(got); len(relexed) != len(toks) {
		t.Errorf("re-lexing %q produced %d tokens, want %d", got, len(relexed), len(toks))
	}
}
