package cpp

import "strings"

// logicalLine is one line after line splicing (backslash-newline) and
// comment removal, tagged with the 1-based physical line where it starts
// and the physical line just after it ends (for resynchronizing output
// line markers).
type logicalLine struct {
	text      string
	startLine int
	nextLine  int
}

// logicalLines performs translation phases 2 and 3: splice continued
// lines, replace comments with a single space, and split the result into
// logical lines. Block comments may span physical lines; the spanned lines
// merge into one logical line, and startLine bookkeeping lets the driver
// re-synchronize. String and character literals are opaque, so comment
// markers and backslashes inside them are preserved (this is what keeps
// JMake's mutation strings intact).
func logicalLines(content string) []logicalLine {
	var out []logicalLine
	var b strings.Builder
	line := 1
	start := 1
	n := len(content)
	flush := func(next int) {
		out = append(out, logicalLine{text: b.String(), startLine: start, nextLine: next})
		b.Reset()
		start = next
	}
	i := 0
	for i < n {
		c := content[i]
		switch {
		case c == '\\' && i+1 < n && content[i+1] == '\n':
			// Line splice: logical line continues.
			i += 2
			line++
		case c == '\\' && i+2 < n && content[i+1] == '\r' && content[i+2] == '\n':
			i += 3
			line++
		case c == '\n':
			i++
			line++
			flush(line)
		case c == '/' && i+1 < n && content[i+1] == '/':
			// Line comment: skip to end of line (not consuming the newline).
			for i < n && content[i] != '\n' {
				i++
			}
			b.WriteByte(' ')
		case c == '/' && i+1 < n && content[i+1] == '*':
			i += 2
			for i < n && !(content[i] == '*' && i+1 < n && content[i+1] == '/') {
				if content[i] == '\n' {
					line++
				}
				i++
			}
			if i < n {
				i += 2 // closing */
			}
			b.WriteByte(' ')
		case c == '"' || c == '\'':
			q := c
			b.WriteByte(c)
			i++
			for i < n && content[i] != q && content[i] != '\n' {
				if content[i] == '\\' && i+1 < n && content[i+1] != '\n' {
					b.WriteByte(content[i])
					i++
				}
				b.WriteByte(content[i])
				i++
			}
			if i < n && content[i] == q {
				b.WriteByte(q)
				i++
			}
		default:
			b.WriteByte(c)
			i++
		}
	}
	if b.Len() > 0 {
		flush(line + 1)
	}
	return out
}
