package cpp

import "sort"

// Predefined is an immutable, pre-lexed set of initial macro definitions
// (the CONFIG_* valuation plus arch built-ins). Building one lexes every
// body exactly once; Preprocess runs seeded with it resolve the shared
// *Macro values through a two-level lookup instead of re-lexing thousands
// of define bodies per file — the dominant per-file cost before this
// existed. Sharing the Macro values across concurrent runs is safe for
// the same reason TokenCache entries are: the expansion pipeline treats
// macro bodies as read-only values (substitution copies tokens, hide-set
// updates copy the slice).
type Predefined struct {
	macros map[string]*Macro
	// names holds the macro names in sorted order, so fingerprints over
	// the set (ccache.OptionsFingerprint) need no per-call sort and stay
	// byte-compatible with hashing a plain Defines map.
	names   []string
	defines map[string]string
}

// NewPredefined lexes defines into a shareable macro set. The map is
// retained for fingerprinting and must not be modified afterwards.
func NewPredefined(defines map[string]string) *Predefined {
	names := make([]string, 0, len(defines))
	for name := range defines {
		names = append(names, name)
	}
	sort.Strings(names)
	macros := make(map[string]*Macro, len(defines))
	for _, name := range names {
		toks := Lex(defines[name])
		if len(toks) > 0 {
			toks[0].WS = false
		}
		macros[name] = &Macro{Name: name, Body: toks}
	}
	return &Predefined{macros: macros, names: names, defines: defines}
}

// Len returns the number of predefined macros.
func (p *Predefined) Len() int { return len(p.macros) }

// VisitDefines calls fn for every definition in sorted name order.
// Result caches hash the set through this, in the same order a sorted
// walk of Options.Defines would produce.
func (p *Predefined) VisitDefines(fn func(name, body string)) {
	for _, name := range p.names {
		fn(name, p.defines[name])
	}
}
