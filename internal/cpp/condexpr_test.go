package cpp

import (
	"strings"
	"testing"
)

func TestParseCondExprBasics(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"defined(CONFIG_FOO)", "defined(CONFIG_FOO)"},
		{"defined CONFIG_FOO", "defined(CONFIG_FOO)"},
		{"!defined(A) && defined(B)", "(!defined(A) && defined(B))"},
		{"CONFIG_X > 2 || defined(Y)", "((CONFIG_X > 2) || defined(Y))"},
		{"0x10uL", "16"},
		{"'\\n'", "10"},
		{"A ? B : C", "(A ? B : C)"},
		{"(A)", "A"},
	}
	for _, c := range cases {
		e, err := ParseCondExpr(c.src)
		if err != nil {
			t.Fatalf("ParseCondExpr(%q): %v", c.src, err)
		}
		if got := e.String(); got != c.want {
			t.Errorf("ParseCondExpr(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseCondExprErrors(t *testing.T) {
	for _, src := range []string{"", "(", "A &&", "defined", "defined(", "defined(1)", "A B", "? : :"} {
		if _, err := ParseCondExpr(src); err == nil {
			t.Errorf("ParseCondExpr(%q): expected error", src)
		}
	}
}

// TestElifChainDynamic is the 3-branch #elif regression test: each branch
// must be entered only when every earlier branch's condition failed. A
// broken evaluator that tests each branch in isolation would emit both
// "first" and "second" when A and B are both defined.
func TestElifChainDynamic(t *testing.T) {
	src := strings.Join([]string{
		"#ifdef A",
		"first",
		"#elif defined(B)",
		"second",
		"#elif defined(C)",
		"third",
		"#else",
		"fourth",
		"#endif",
		"",
	}, "\n")
	cases := []struct {
		defines map[string]string
		want    string
		not     []string
	}{
		{map[string]string{"A": "1", "B": "1", "C": "1"}, "first", []string{"second", "third", "fourth"}},
		{map[string]string{"B": "1", "C": "1"}, "second", []string{"first", "third", "fourth"}},
		{map[string]string{"C": "1"}, "third", []string{"first", "second", "fourth"}},
		{nil, "fourth", []string{"first", "second", "third"}},
	}
	for _, c := range cases {
		res, err := Preprocess(mapSource{"main.c": src}, "main.c", Options{Defines: c.defines})
		if err != nil {
			t.Fatalf("Preprocess(%v): %v", c.defines, err)
		}
		if !strings.Contains(res.Output, c.want) {
			t.Errorf("defines %v: output missing %q:\n%s", c.defines, c.want, res.Output)
		}
		for _, n := range c.not {
			if strings.Contains(res.Output, n) {
				t.Errorf("defines %v: output wrongly contains %q:\n%s", c.defines, n, res.Output)
			}
		}
	}
}

// TestBranchCondExprChain checks the symbolic side of the same chain: the
// controlling condition of each branch carries the negation of all earlier
// branch tests.
func TestBranchCondExprChain(t *testing.T) {
	prior2 := []PriorBranch{{Kind: "ifdef", Arg: "A"}}
	prior3 := []PriorBranch{{Kind: "ifdef", Arg: "A"}, {Kind: "elif", Arg: "defined(B)"}}
	priorElse := append(prior3, PriorBranch{Kind: "elif", Arg: "defined(C)"})

	cases := []struct {
		kind  string
		arg   string
		prior []PriorBranch
		want  string
	}{
		{"ifdef", "A", nil, "defined(A)"},
		{"elif", "defined(B)", prior2, "(!defined(A) && defined(B))"},
		{"elif", "defined(C)", prior3, "((!defined(A) && !defined(B)) && defined(C))"},
		{"else", "", priorElse, "((!defined(A) && !defined(B)) && !defined(C))"},
	}
	for _, c := range cases {
		e, err := BranchCondExpr(c.kind, c.arg, c.prior)
		if err != nil {
			t.Fatalf("BranchCondExpr(%s, %q): %v", c.kind, c.arg, err)
		}
		if got := e.String(); got != c.want {
			t.Errorf("BranchCondExpr(%s, %q) = %s, want %s", c.kind, c.arg, got, c.want)
		}
	}

	if e, err := BranchCondExpr("ifndef", "GUARD_H", nil); err != nil || e.String() != "!defined(GUARD_H)" {
		t.Errorf("ifndef: got %v, %v", e, err)
	}
	if _, err := BranchCondExpr("elif", "((", prior2); err == nil {
		t.Errorf("malformed elif arg: expected error")
	}
}
