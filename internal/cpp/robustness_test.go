package cpp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestPragmaOnce(t *testing.T) {
	files := map[string]string{
		"main.c": "#include \"o.h\"\n#include \"o.h\"\nint v = ONCE;\n",
		"o.h":    "#pragma once\n#define ONCE 5\nint in_header;\n",
	}
	res := run(t, files, Options{})
	if got := strings.Count(res.Output, "in_header"); got != 1 {
		t.Errorf("header body appeared %d times, want 1 (#pragma once)", got)
	}
	if !strings.Contains(res.Output, "int v = 5;") {
		t.Errorf("macro from once-guarded header missing:\n%s", res.Output)
	}
}

func TestCounterBuiltin(t *testing.T) {
	src := "int a = __COUNTER__;\nint b = __COUNTER__;\nint c = __COUNTER__;\n"
	res := run(t, map[string]string{"main.c": src}, Options{})
	out := strings.Join(body(res), "\n")
	for _, want := range []string{"int a = 0;", "int b = 1;", "int c = 2;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// Robustness: the preprocessor must never panic or hang on arbitrary
// token soup — it either produces output or returns a positioned error.
func TestPreprocessNeverPanics(t *testing.T) {
	fragments := []string{
		"#define ", "#if ", "#endif\n", "#else\n", "#include ", "<x.h>",
		"\"y.h\"", "FOO", "(", ")", ",", "##", "#", "\\\n", "\n",
		"0x1f", "'c'", "\"str\"", "/*", "*/", "//", "@", "$", "...",
		"__VA_ARGS__", "defined", "&&", "||", "?", ":", "1/0", "~",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			b.WriteString(fragments[rng.Intn(len(fragments))])
			if rng.Intn(4) == 0 {
				b.WriteByte(' ')
			}
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", src, r)
				}
			}()
			_, _ = Preprocess(mapSource{"main.c": src, "x.h": "int xh;\n", "y.h": "int yh;\n"},
				"main.c", Options{})
		}()
	}
}

// Round-trip sanity: preprocessing its own output (minus markers) is
// stable for plain code.
func TestPreprocessIdempotentOnPlainCode(t *testing.T) {
	src := "int a;\nstruct s { int x; };\nint f(void)\n{\n\treturn 1;\n}\n"
	res1 := run(t, map[string]string{"main.c": src}, Options{})
	stripped := strings.Join(body(res1), "\n") + "\n"
	res2 := run(t, map[string]string{"main.c": stripped}, Options{})
	if got := strings.Join(body(res2), "\n") + "\n"; got != stripped {
		t.Errorf("not idempotent:\nfirst:\n%s\nsecond:\n%s", stripped, got)
	}
}

func BenchmarkPreprocessUncached(b *testing.B) {
	files := benchFiles()
	opts := Options{IncludeDirs: []string{"include"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Preprocess(mapSource(files), "main.c", opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreprocessCached(b *testing.B) {
	files := benchFiles()
	opts := Options{IncludeDirs: []string{"include"}, Cache: NewTokenCache()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Preprocess(mapSource(files), "main.c", opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFiles builds a header-heavy translation unit.
func benchFiles() map[string]string {
	var hdr strings.Builder
	hdr.WriteString("#ifndef BIG_H\n#define BIG_H\n")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&hdr, "extern int api_fn_%03d(int a, int b);\n#define API_CONST_%03d 0x%03x\n", i, i, i)
	}
	hdr.WriteString("#endif\n")
	var src strings.Builder
	src.WriteString("#include <big.h>\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&src, "int use_%03d = API_CONST_%03d;\n", i, i)
	}
	return map[string]string{"main.c": src.String(), "include/big.h": hdr.String()}
}
