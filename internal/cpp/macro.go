package cpp

import (
	"fmt"
	"strconv"
	"strings"
)

// Macro is one #define'd macro.
type Macro struct {
	Name     string
	FuncLike bool
	Params   []string
	Variadic bool
	Body     []Token
}

// paramIndex returns the parameter index of name, the variadic slot for
// __VA_ARGS__, or -1.
func (m *Macro) paramIndex(name string) int {
	for i, p := range m.Params {
		if p == name {
			return i
		}
	}
	if m.Variadic && name == "__VA_ARGS__" {
		return len(m.Params)
	}
	return -1
}

// expandTokens fully macro-expands a token sequence using the worklist
// formulation of the standard algorithm: replacement tokens are pushed back
// onto the front of the worklist so that later tokens can complete
// function-like invocations begun by an expansion.
func (p *pp) expandTokens(ts []Token) ([]Token, error) {
	var out []Token
	work := make([]Token, len(ts))
	copy(work, ts)
	steps := 0
	for len(work) > 0 {
		steps++
		if steps > 1_000_000 {
			return nil, p.errf("macro expansion does not terminate")
		}
		t := work[0]
		work = work[1:]
		if t.Kind != KindIdent {
			out = append(out, t)
			continue
		}
		// Dynamic built-ins.
		switch t.Text {
		case "__LINE__":
			out = append(out, Token{Kind: KindNumber, Text: strconv.Itoa(p.curLine), WS: t.WS})
			continue
		case "__FILE__":
			out = append(out, Token{Kind: KindString, Text: strconv.Quote(p.curFile), WS: t.WS})
			continue
		case "__COUNTER__":
			out = append(out, Token{Kind: KindNumber, Text: strconv.Itoa(p.counter), WS: t.WS})
			p.counter++
			continue
		}
		m, ok := p.macroFor(t.Text)
		if !ok || t.hidden(t.Text) {
			out = append(out, t)
			continue
		}
		if !m.FuncLike {
			rep := p.substitute(m, nil, t.WS)
			hideAll(rep, t.hide, m.Name)
			work = append(rep, work...)
			continue
		}
		// Function-like: an invocation needs a '(' next in the stream.
		if len(work) == 0 || !(work[0].Kind == KindPunct && work[0].Text == "(") {
			out = append(out, t)
			continue
		}
		args, rest, err := p.collectArgs(m, work[1:])
		if err != nil {
			return nil, err
		}
		work = rest
		rep := p.substitute(m, args, t.WS)
		hideAll(rep, t.hide, m.Name)
		work = append(rep, work...)
	}
	return out, nil
}

// hideAll extends every replacement token's hide set with the invoking
// token's hide set plus the expanded macro's own name, so that indirect
// recursion (A -> B -> A) is blocked as the standard requires.
func hideAll(rep []Token, inherited []string, name string) {
	for i := range rep {
		for _, h := range inherited {
			rep[i] = rep[i].withHide(h)
		}
		rep[i] = rep[i].withHide(name)
	}
}

// collectArgs parses a macro argument list from ts, which starts just after
// the opening parenthesis. It returns the raw (unexpanded) argument token
// lists and the remaining tokens after the closing parenthesis.
func (p *pp) collectArgs(m *Macro, ts []Token) (args [][]Token, rest []Token, err error) {
	depth := 1
	var cur []Token
	i := 0
	for ; i < len(ts); i++ {
		t := ts[i]
		if t.Kind == KindPunct {
			switch t.Text {
			case "(", "[", "{":
				depth++
			case ")", "]", "}":
				if t.Text == ")" && depth == 1 {
					args = append(args, cur)
					goto done
				}
				depth--
			case ",":
				// A comma at depth 1 separates arguments — unless the named
				// parameters are already filled and the rest flows into
				// __VA_ARGS__.
				if depth == 1 && !(m.Variadic && len(args) >= len(m.Params)) {
					args = append(args, cur)
					cur = nil
					continue
				}
			}
		}
		cur = append(cur, t)
	}
	return nil, nil, p.errf("unterminated invocation of macro %q", m.Name)
done:
	rest = ts[i+1:]
	want := len(m.Params)
	if want == 0 && !m.Variadic && len(args) == 1 && len(args[0]) == 0 {
		args = nil // f() has zero arguments, not one empty one
	}
	if m.Variadic {
		if len(args) < want {
			return nil, nil, p.errf("macro %q requires at least %d arguments, got %d", m.Name, want, len(args))
		}
		// Re-join everything past the named parameters into __VA_ARGS__.
		if len(args) > want+1 {
			var va []Token
			for j := want; j < len(args); j++ {
				if j > want {
					va = append(va, Token{Kind: KindPunct, Text: ","})
				}
				va = append(va, args[j]...)
			}
			args = append(args[:want], va)
		}
		if len(args) == want {
			args = append(args, nil) // empty __VA_ARGS__
		}
	} else if len(args) != want {
		return nil, nil, p.errf("macro %q requires %d arguments, got %d", m.Name, want, len(args))
	}
	return args, rest, nil
}

// substitute builds the replacement token list for one invocation of m,
// applying # stringification, ## pasting, and parameter substitution.
// rawArgs are unexpanded; expansion of an argument happens lazily the first
// time it is substituted outside a # or ## context.
func (p *pp) substitute(m *Macro, rawArgs [][]Token, leadWS bool) []Token {
	expanded := make([][]Token, len(rawArgs))
	haveExp := make([]bool, len(rawArgs))
	expandArg := func(i int) []Token {
		if !haveExp[i] {
			e, err := p.expandTokens(rawArgs[i])
			if err != nil {
				// Propagate by substituting raw tokens; the caller's own
				// expansion pass will rediscover the error deterministically.
				e = rawArgs[i]
			}
			expanded[i] = e
			haveExp[i] = true
		}
		return expanded[i]
	}

	var out []Token
	body := m.Body
	for i := 0; i < len(body); i++ {
		t := body[i]
		// Stringification: # param
		if t.Kind == KindPunct && t.Text == "#" && m.FuncLike && i+1 < len(body) {
			if pi := m.paramIndex(body[i+1].Text); pi >= 0 && body[i+1].Kind == KindIdent {
				out = append(out, Token{Kind: KindString, Text: stringify(rawArgs[pi]), WS: t.WS})
				i++
				continue
			}
		}
		// Pasting: operand ## operand [## operand ...]
		if i+1 < len(body) && body[i+1].Kind == KindPunct && body[i+1].Text == "##" {
			chain := [][]Token{pasteOperand(m, t, rawArgs)}
			for i+1 < len(body) && body[i+1].Kind == KindPunct && body[i+1].Text == "##" {
				i += 2
				if i >= len(body) {
					break // malformed trailing ##; drop it
				}
				chain = append(chain, pasteOperand(m, body[i], rawArgs))
			}
			out = append(out, pasteChain(chain, t.WS)...)
			continue
		}
		// Plain parameter substitution.
		if t.Kind == KindIdent && m.FuncLike {
			if pi := m.paramIndex(t.Text); pi >= 0 {
				arg := expandArg(pi)
				for j, at := range arg {
					if j == 0 {
						at.WS = t.WS
					}
					out = append(out, at)
				}
				continue
			}
		}
		out = append(out, t)
	}
	if len(out) > 0 {
		out[0].WS = leadWS
	}
	return out
}

// pasteOperand resolves one ## operand: parameters yield their raw
// (unexpanded) argument tokens, anything else yields itself.
func pasteOperand(m *Macro, t Token, rawArgs [][]Token) []Token {
	if t.Kind == KindIdent && m.FuncLike {
		if pi := m.paramIndex(t.Text); pi >= 0 {
			return rawArgs[pi]
		}
	}
	return []Token{t}
}

// pasteChain concatenates operand lists, gluing the last token of each list
// to the first token of the next and re-lexing the glued text.
func pasteChain(chain [][]Token, leadWS bool) []Token {
	var out []Token
	for _, part := range chain {
		if len(part) == 0 {
			continue
		}
		if len(out) == 0 {
			out = append(out, part...)
			continue
		}
		glued := out[len(out)-1].Text + part[0].Text
		out = out[:len(out)-1]
		relexed := Lex(glued)
		out = append(out, relexed...)
		out = append(out, part[1:]...)
	}
	if len(out) > 0 {
		out[0].WS = leadWS
	}
	return out
}

// stringify renders arg tokens as a C string literal per the # operator:
// interior whitespace collapses to single spaces, and embedded quotes and
// backslashes are escaped.
func stringify(ts []Token) string {
	var b strings.Builder
	b.WriteByte('"')
	for i, t := range ts {
		if i > 0 && t.WS {
			b.WriteByte(' ')
		}
		for j := 0; j < len(t.Text); j++ {
			c := t.Text[j]
			if c == '"' || c == '\\' {
				b.WriteByte('\\')
			}
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// parseDefine parses the token stream after "#define".
func parseDefine(ts []Token) (*Macro, error) {
	if len(ts) == 0 || ts[0].Kind != KindIdent {
		return nil, fmt.Errorf("#define requires a macro name")
	}
	m := &Macro{Name: ts[0].Text}
	rest := ts[1:]
	// Function-like only when '(' immediately follows the name, no space.
	if len(rest) > 0 && rest[0].Kind == KindPunct && rest[0].Text == "(" && !rest[0].WS {
		m.FuncLike = true
		i := 1
		for {
			if i >= len(rest) {
				return nil, fmt.Errorf("unterminated parameter list in #define %s", m.Name)
			}
			t := rest[i]
			switch {
			case t.Kind == KindPunct && t.Text == ")":
				i++
				goto bodyStart
			case t.Kind == KindIdent:
				m.Params = append(m.Params, t.Text)
				i++
			case t.Kind == KindPunct && t.Text == "...":
				m.Variadic = true
				i++
			case t.Kind == KindPunct && t.Text == ",":
				i++
			default:
				return nil, fmt.Errorf("bad parameter list token %q in #define %s", t.Text, m.Name)
			}
		}
	bodyStart:
		rest = rest[i:]
	}
	m.Body = make([]Token, len(rest))
	copy(m.Body, rest)
	if len(m.Body) > 0 {
		m.Body[0].WS = false
	}
	return m, nil
}
