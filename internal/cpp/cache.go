package cpp

import (
	"hash/fnv"
	"sync"
)

// TokenCache memoizes the per-file scanning work (logical-line splitting
// and tokenization) keyed by content identity. Headers like the kernel's
// common includes are preprocessed thousands of times across an
// evaluation with identical content; conditional evaluation and macro
// expansion still run per inclusion (they depend on the macro state), but
// the lexing does not.
//
// Cached tokens are shared between preprocessor runs. This is safe
// because the expansion pipeline treats tokens as values: worklists copy
// token structs, and hide-set updates copy the slice (see Token.withHide).
//
// A TokenCache is safe for concurrent use. Each key is computed exactly
// once: concurrent first requests for the same content elect one computer
// and the rest wait on it, so the miss count equals the number of distinct
// keys regardless of worker count or interleaving — which keeps cache
// statistics reproducible across -workers settings.
type TokenCache struct {
	mu      sync.Mutex
	entries map[uint64]*cachedFile
	hits    uint64
	misses  uint64
}

type cachedFile struct {
	once  sync.Once
	lines []logicalLine
	toks  [][]Token
}

// NewTokenCache returns an empty cache.
func NewTokenCache() *TokenCache {
	return &TokenCache{entries: make(map[uint64]*cachedFile)}
}

func contentKey(path, content string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(path))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(content))
	return h.Sum64()
}

// scan returns the logical lines and per-line tokens for content, from the
// cache when possible.
func (c *TokenCache) scan(path, content string) ([]logicalLine, [][]Token) {
	key := contentKey(path, content)
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		e = &cachedFile{}
		c.entries[key] = e
		c.misses++
	}
	c.mu.Unlock()

	e.once.Do(func() {
		e.lines = logicalLines(content)
		e.toks = make([][]Token, len(e.lines))
		for i, ll := range e.lines {
			e.toks[i] = Lex(ll.text)
		}
	})
	return e.lines, e.toks
}

// Len returns the number of cached files.
func (c *TokenCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the lookup counters. Misses equal the number of distinct
// keys ever requested, so both values are invariant under concurrency.
func (c *TokenCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
