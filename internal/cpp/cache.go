package cpp

import (
	"hash/fnv"
	"sync"
)

// TokenCache memoizes the per-file scanning work (logical-line splitting
// and tokenization) keyed by content identity. Headers like the kernel's
// common includes are preprocessed thousands of times across an
// evaluation with identical content; conditional evaluation and macro
// expansion still run per inclusion (they depend on the macro state), but
// the lexing does not.
//
// Cached tokens are shared between preprocessor runs. This is safe
// because the expansion pipeline treats tokens as values: worklists copy
// token structs, and hide-set updates copy the slice (see Token.withHide).
//
// A TokenCache is safe for concurrent use.
type TokenCache struct {
	mu      sync.Mutex
	entries map[uint64]*cachedFile
}

type cachedFile struct {
	lines []logicalLine
	toks  [][]Token
}

// NewTokenCache returns an empty cache.
func NewTokenCache() *TokenCache {
	return &TokenCache{entries: make(map[uint64]*cachedFile)}
}

func contentKey(path, content string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(path))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(content))
	return h.Sum64()
}

// scan returns the logical lines and per-line tokens for content, from the
// cache when possible.
func (c *TokenCache) scan(path, content string) ([]logicalLine, [][]Token) {
	key := contentKey(path, content)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		return e.lines, e.toks
	}
	c.mu.Unlock()

	lines := logicalLines(content)
	toks := make([][]Token, len(lines))
	for i, ll := range lines {
		toks[i] = Lex(ll.text)
	}
	c.mu.Lock()
	c.entries[key] = &cachedFile{lines: lines, toks: toks}
	c.mu.Unlock()
	return lines, toks
}

// Len returns the number of cached files.
func (c *TokenCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
