package cpp

import (
	"hash/fnv"
	"sync"

	"jmake/internal/metrics"
)

// TokenCache memoizes the per-file scanning work (logical-line splitting
// and tokenization) keyed by content identity — the content bytes alone,
// never the path. Headers like the kernel's common includes are
// preprocessed thousands of times across an evaluation with identical
// content, frequently under *different* paths (the same header reached
// via different include dirs, or identical files in sibling drivers);
// all of them share one entry. Conditional evaluation and macro
// expansion still run per inclusion (they depend on the macro state),
// but the lexing does not.
//
// Cached tokens are shared between preprocessor runs. This is safe
// because the expansion pipeline treats tokens as values: worklists copy
// token structs, and hide-set updates copy the slice (see Token.withHide).
//
// A TokenCache is safe for concurrent use. Each key is computed exactly
// once: concurrent first requests for the same content elect one computer
// and the rest wait on it, so the miss count equals the number of distinct
// contents regardless of worker count or interleaving — which keeps cache
// statistics reproducible across -workers settings. The store is split
// into shards addressed by key prefix so workers scanning different files
// never contend on one mutex, and each bucket chains entries whose
// content is verified on every lookup — an FNV-64 collision can therefore
// never serve the wrong token stream; it only widens one bucket.
type TokenCache struct {
	shards [tokenShards]tokenShard
	// Predefined macro sets, elected per key exactly like file entries.
	// Cardinality is tiny (arches x configurations x MODULE flag), so one
	// mutex suffices; the build itself runs outside it under the entry's
	// once.
	preMu  sync.Mutex
	preSet map[uint64]*predefEntry
	// Lookup counters live in the owning registry (metrics.Registry is
	// the single home for every pipeline counter); these are handles to
	// the "token_cache_hits"/"token_cache_misses" series.
	hits   *metrics.Counter
	misses *metrics.Counter
}

type predefEntry struct {
	once sync.Once
	pre  *Predefined
}

// tokenShards is the shard count; a power of two so the shard index is a
// mask of the key's top bits. 16 comfortably exceeds the paper's 25
// worker processes' realistic simultaneous-scan overlap.
const tokenShards = 16

type tokenShard struct {
	mu sync.Mutex
	// entries chains cached files per 64-bit key: every entry in a chain
	// has the same FNV-64 but (on collision) different content, and
	// lookups compare content before serving.
	entries map[uint64][]*cachedFile
}

type cachedFile struct {
	once sync.Once
	// content is the exact bytes this entry was keyed from; lookups
	// verify it so a hash collision is a chain scan, never a wrong serve.
	content string
	// path records the first path the content was seen under — debug
	// info only, never part of the key.
	path  string
	lines []logicalLine
	toks  [][]Token
}

// NewTokenCache returns an empty cache counting into a private registry.
func NewTokenCache() *TokenCache {
	return NewTokenCacheIn(metrics.NewRegistry())
}

// NewTokenCacheIn returns an empty cache whose counters are series in
// reg, so a shared session registry owns every cache's numbers.
func NewTokenCacheIn(reg *metrics.Registry) *TokenCache {
	c := &TokenCache{
		preSet: make(map[uint64]*predefEntry),
		hits:   reg.Counter("token_cache_hits"),
		misses: reg.Counter("token_cache_misses"),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[uint64][]*cachedFile)
	}
	return c
}

// contentKey hashes the content alone: two paths holding identical bytes
// share one cache entry (the doc'd "keyed by content identity").
func contentKey(content string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(content))
	return h.Sum64()
}

// shardFor maps a key to its shard by prefix (top bits).
func (c *TokenCache) shardFor(key uint64) *tokenShard {
	return &c.shards[key>>(64-4)] // top log2(tokenShards) bits
}

// scan returns the logical lines and per-line tokens for content, from the
// cache when possible. path is carried as debug information only.
func (c *TokenCache) scan(path, content string) ([]logicalLine, [][]Token) {
	key := contentKey(content)
	sh := c.shardFor(key)
	sh.mu.Lock()
	var e *cachedFile
	for _, cand := range sh.entries[key] {
		if cand.content == content {
			e = cand
			break
		}
	}
	if e != nil {
		c.hits.Inc()
	} else {
		e = &cachedFile{content: content, path: path}
		sh.entries[key] = append(sh.entries[key], e)
		c.misses.Inc()
	}
	sh.mu.Unlock()

	e.once.Do(func() {
		e.lines = logicalLines(content)
		e.toks = make([][]Token, len(e.lines))
		for i, ll := range e.lines {
			e.toks[i] = Lex(ll.text)
		}
	})
	return e.lines, e.toks
}

// PredefinedFor returns the shared pre-lexed macro set for key, building
// it at most once per cache via build(). The key must fully identify the
// define set's content (kbuild hashes the arch name, the configuration
// fingerprint and the MODULE flag); concurrent first requests elect one
// builder and the rest wait, the same discipline as scan.
func (c *TokenCache) PredefinedFor(key uint64, build func() map[string]string) *Predefined {
	c.preMu.Lock()
	e, ok := c.preSet[key]
	if !ok {
		e = &predefEntry{}
		c.preSet[key] = e
	}
	c.preMu.Unlock()
	e.once.Do(func() { e.pre = NewPredefined(build()) })
	return e.pre
}

// Len returns the number of cached files.
func (c *TokenCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, chain := range sh.entries {
			n += len(chain)
		}
		sh.mu.Unlock()
	}
	return n
}

// Stats returns the lookup counters (a view over the registry series).
// Misses equal the number of distinct contents ever requested, so both
// values are invariant under concurrency.
func (c *TokenCache) Stats() (hits, misses uint64) {
	return c.hits.Value(), c.misses.Value()
}
