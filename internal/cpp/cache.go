package cpp

import (
	"hash/fnv"
	"sync"

	"jmake/internal/metrics"
)

// TokenCache memoizes the per-file scanning work (logical-line splitting
// and tokenization) keyed by content identity. Headers like the kernel's
// common includes are preprocessed thousands of times across an
// evaluation with identical content; conditional evaluation and macro
// expansion still run per inclusion (they depend on the macro state), but
// the lexing does not.
//
// Cached tokens are shared between preprocessor runs. This is safe
// because the expansion pipeline treats tokens as values: worklists copy
// token structs, and hide-set updates copy the slice (see Token.withHide).
//
// A TokenCache is safe for concurrent use. Each key is computed exactly
// once: concurrent first requests for the same content elect one computer
// and the rest wait on it, so the miss count equals the number of distinct
// keys regardless of worker count or interleaving — which keeps cache
// statistics reproducible across -workers settings.
type TokenCache struct {
	mu      sync.Mutex
	entries map[uint64]*cachedFile
	// Lookup counters live in the owning registry (metrics.Registry is
	// the single home for every pipeline counter); these are handles to
	// the "token_cache_hits"/"token_cache_misses" series.
	hits   *metrics.Counter
	misses *metrics.Counter
}

type cachedFile struct {
	once  sync.Once
	lines []logicalLine
	toks  [][]Token
}

// NewTokenCache returns an empty cache counting into a private registry.
func NewTokenCache() *TokenCache {
	return NewTokenCacheIn(metrics.NewRegistry())
}

// NewTokenCacheIn returns an empty cache whose counters are series in
// reg, so a shared session registry owns every cache's numbers.
func NewTokenCacheIn(reg *metrics.Registry) *TokenCache {
	return &TokenCache{
		entries: make(map[uint64]*cachedFile),
		hits:    reg.Counter("token_cache_hits"),
		misses:  reg.Counter("token_cache_misses"),
	}
}

func contentKey(path, content string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(path))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(content))
	return h.Sum64()
}

// scan returns the logical lines and per-line tokens for content, from the
// cache when possible.
func (c *TokenCache) scan(path, content string) ([]logicalLine, [][]Token) {
	key := contentKey(path, content)
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits.Inc()
	} else {
		e = &cachedFile{}
		c.entries[key] = e
		c.misses.Inc()
	}
	c.mu.Unlock()

	e.once.Do(func() {
		e.lines = logicalLines(content)
		e.toks = make([][]Token, len(e.lines))
		for i, ll := range e.lines {
			e.toks[i] = Lex(ll.text)
		}
	})
	return e.lines, e.toks
}

// Len returns the number of cached files.
func (c *TokenCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the lookup counters (a view over the registry series).
// Misses equal the number of distinct keys ever requested, so both
// values are invariant under concurrency.
func (c *TokenCache) Stats() (hits, misses uint64) {
	return c.hits.Value(), c.misses.Value()
}
