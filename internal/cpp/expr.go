package cpp

// evalCondition evaluates a #if / #elif controlling expression: `defined`
// is resolved first, remaining tokens are macro-expanded, leftover
// identifiers become 0, and the result is a C integer constant expression.
// Parsing and evaluation are separate passes so that && / || / ?: short-
// circuit properly: a division by zero in an untaken branch is not an
// error, matching gcc.
func (p *pp) evalCondition(ts []Token) (bool, error) {
	resolved, err := p.resolveDefined(ts)
	if err != nil {
		return false, err
	}
	expanded, err := p.expandTokens(resolved)
	if err != nil {
		return false, err
	}
	ep := &exprParser{p: p, ts: expanded}
	node, err := ep.parse()
	if err != nil {
		return false, err
	}
	v, err := node.eval(p)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// resolveDefined replaces `defined NAME` and `defined(NAME)` with 1 or 0
// before macro expansion, as the standard requires.
func (p *pp) resolveDefined(ts []Token) ([]Token, error) {
	var out []Token
	for i := 0; i < len(ts); i++ {
		t := ts[i]
		if t.Kind != KindIdent || t.Text != "defined" {
			out = append(out, t)
			continue
		}
		i++
		paren := false
		if i < len(ts) && ts[i].Kind == KindPunct && ts[i].Text == "(" {
			paren = true
			i++
		}
		if i >= len(ts) || ts[i].Kind != KindIdent {
			return nil, p.errf("operator \"defined\" requires an identifier")
		}
		name := ts[i].Text
		if paren {
			i++
			if i >= len(ts) || ts[i].Kind != KindPunct || ts[i].Text != ")" {
				return nil, p.errf("missing ')' after \"defined\"")
			}
		}
		val := "0"
		if _, ok := p.macroFor(name); ok {
			val = "1"
		}
		out = append(out, Token{Kind: KindNumber, Text: val, WS: t.WS})
	}
	return out, nil
}

// expr is a parsed constant-expression node.
type expr interface {
	eval(p *pp) (int64, error)
}

type numExpr int64

func (n numExpr) eval(*pp) (int64, error) { return int64(n), nil }

type unaryExpr struct {
	op string
	x  expr
}

func (u unaryExpr) eval(p *pp) (int64, error) {
	v, err := u.x.eval(p)
	if err != nil {
		return 0, err
	}
	switch u.op {
	case "!":
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case "~":
		return ^v, nil
	case "-":
		return -v, nil
	case "+":
		return v, nil
	}
	return 0, p.errf("unknown unary operator %q", u.op)
}

type binExpr struct {
	op   string
	l, r expr
}

func (b binExpr) eval(p *pp) (int64, error) {
	l, err := b.l.eval(p)
	if err != nil {
		return 0, err
	}
	btoi := func(x bool) int64 {
		if x {
			return 1
		}
		return 0
	}
	// Short-circuit: the right operand of && / || is only evaluated when it
	// can affect the result.
	switch b.op {
	case "&&":
		if l == 0 {
			return 0, nil
		}
		r, err := b.r.eval(p)
		if err != nil {
			return 0, err
		}
		return btoi(r != 0), nil
	case "||":
		if l != 0 {
			return 1, nil
		}
		r, err := b.r.eval(p)
		if err != nil {
			return 0, err
		}
		return btoi(r != 0), nil
	}
	r, err := b.r.eval(p)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case "|":
		return l | r, nil
	case "^":
		return l ^ r, nil
	case "&":
		return l & r, nil
	case "==":
		return btoi(l == r), nil
	case "!=":
		return btoi(l != r), nil
	case "<":
		return btoi(l < r), nil
	case ">":
		return btoi(l > r), nil
	case "<=":
		return btoi(l <= r), nil
	case ">=":
		return btoi(l >= r), nil
	case "<<":
		return l << (uint64(r) & 63), nil
	case ">>":
		return l >> (uint64(r) & 63), nil
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, p.errf("division by zero in #if expression")
		}
		return l / r, nil
	case "%":
		if r == 0 {
			return 0, p.errf("division by zero in #if expression")
		}
		return l % r, nil
	}
	return 0, p.errf("unknown operator %q", b.op)
}

type ternExpr struct {
	c, t, f expr
}

func (t ternExpr) eval(p *pp) (int64, error) {
	c, err := t.c.eval(p)
	if err != nil {
		return 0, err
	}
	if c != 0 {
		return t.t.eval(p)
	}
	return t.f.eval(p)
}

// exprParser is a precedence-climbing parser producing expr trees.
type exprParser struct {
	p   *pp
	ts  []Token
	pos int
}

func (e *exprParser) peek() (Token, bool) {
	if e.pos < len(e.ts) {
		return e.ts[e.pos], true
	}
	return Token{}, false
}

func (e *exprParser) next() (Token, bool) {
	t, ok := e.peek()
	if ok {
		e.pos++
	}
	return t, ok
}

func (e *exprParser) parse() (expr, error) {
	v, err := e.ternary()
	if err != nil {
		return nil, err
	}
	if t, ok := e.peek(); ok {
		return nil, e.p.errf("unexpected token %q in #if expression", t.Text)
	}
	return v, nil
}

func (e *exprParser) ternary() (expr, error) {
	cond, err := e.binary(0)
	if err != nil {
		return nil, err
	}
	t, ok := e.peek()
	if !ok || t.Kind != KindPunct || t.Text != "?" {
		return cond, nil
	}
	e.pos++
	thenE, err := e.ternary()
	if err != nil {
		return nil, err
	}
	t, ok = e.next()
	if !ok || t.Text != ":" {
		return nil, e.p.errf("missing ':' in ternary expression")
	}
	elseE, err := e.ternary()
	if err != nil {
		return nil, err
	}
	return ternExpr{cond, thenE, elseE}, nil
}

// binPrec maps binary operators to precedence; higher binds tighter.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (e *exprParser) binary(minPrec int) (expr, error) {
	lhs, err := e.unary()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := e.peek()
		if !ok || t.Kind != KindPunct {
			return lhs, nil
		}
		prec, isOp := binPrec[t.Text]
		if !isOp || prec < minPrec {
			return lhs, nil
		}
		e.pos++
		rhs, err := e.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = binExpr{t.Text, lhs, rhs}
	}
}

func (e *exprParser) unary() (expr, error) {
	t, ok := e.next()
	if !ok {
		return nil, e.p.errf("unexpected end of #if expression")
	}
	switch t.Kind {
	case KindPunct:
		switch t.Text {
		case "!", "~", "-", "+":
			x, err := e.unary()
			if err != nil {
				return nil, err
			}
			return unaryExpr{t.Text, x}, nil
		case "(":
			v, err := e.ternary()
			if err != nil {
				return nil, err
			}
			nt, ok := e.next()
			if !ok || nt.Text != ")" {
				return nil, e.p.errf("missing ')' in #if expression")
			}
			return v, nil
		}
	case KindNumber:
		v, err := parsePPNumber(e.p, t.Text)
		return numExpr(v), err
	case KindChar:
		v, err := charValue(e.p, t.Text)
		return numExpr(v), err
	case KindIdent:
		// Unexpanded identifier: evaluates to 0 per the standard.
		return numExpr(0), nil
	}
	return nil, e.p.errf("unexpected token %q in #if expression", t.Text)
}

// parsePPNumber converts a pp-number to int64, attaching preprocessor
// location context to any error. The conversion itself lives in
// ppNumberValue (condexpr.go) so the symbolic parser shares it.
func parsePPNumber(p *pp, s string) (int64, error) {
	v, err := ppNumberValue(s)
	if err != nil {
		return 0, p.errf("%v", err)
	}
	return v, nil
}

// charValue evaluates a character constant like 'a' or '\n', attaching
// location context to any error; see charConstValue (condexpr.go).
func charValue(p *pp, s string) (int64, error) {
	v, err := charConstValue(s)
	if err != nil {
		return 0, p.errf("%v", err)
	}
	return v, nil
}
