// Package cpp implements a C preprocessor sufficient to generate .i files
// from kernel-style sources: object/function/variadic macros with # and ##,
// the full conditional-directive family with constant-expression
// evaluation, includes with search paths, and gcc-style line markers.
//
// JMake (paper §III-A) relies on two preprocessor properties that this
// package reproduces faithfully: (1) tokens that are invalid in C proper —
// such as the '@' in JMake's mutation strings — pass through preprocessing
// untouched, and (2) text inside a macro body surfaces in the .i file at
// the macro's *use* sites, not its definition site.
package cpp

import "strings"

// Kind classifies a preprocessing token.
type Kind int

// Token kinds. KindOther covers characters outside the C source character
// set (e.g. '@', '$', '`'), which a conforming preprocessor must preserve.
const (
	KindIdent Kind = iota + 1
	KindNumber
	KindString
	KindChar
	KindPunct
	KindOther
)

// Token is one preprocessing token.
type Token struct {
	Kind Kind
	Text string
	WS   bool // preceded by whitespace (controls spacing in output)
	hide []string
}

// hidden reports whether macro name is in the token's hide set, i.e. the
// token was produced by an expansion of that macro and must not trigger it
// again.
func (t Token) hidden(name string) bool {
	for _, h := range t.hide {
		if h == name {
			return true
		}
	}
	return false
}

// withHide returns a copy of t whose hide set additionally contains name.
func (t Token) withHide(name string) Token {
	if t.hidden(name) {
		return t
	}
	nh := make([]string, len(t.hide)+1)
	copy(nh, t.hide)
	nh[len(t.hide)] = name
	t.hide = nh
	return t
}

// isIdentStart and isIdentCont define C identifier characters.
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\v' || c == '\f' || c == '\r' }

// multi-character punctuators, longest first so greedy matching works.
var punctuators = []string{
	"...", "<<=", ">>=",
	"##", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
	"&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
	"#", "[", "]", "(", ")", "{", "}", ".", "&", "*", "+", "-", "~", "!",
	"/", "%", "<", ">", "^", "|", "?", ":", ";", "=", ",",
}

// Lex splits one logical line into preprocessing tokens. It never fails:
// unknown characters become KindOther tokens and unterminated literals
// extend to the end of the line.
func Lex(s string) []Token {
	var out []Token
	i := 0
	ws := false
	n := len(s)
	for i < n {
		c := s[i]
		if isSpace(c) {
			ws = true
			i++
			continue
		}
		start := i
		var kind Kind
		switch {
		case isIdentStart(c):
			kind = KindIdent
			for i < n && isIdentCont(s[i]) {
				i++
			}
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(s[i+1])):
			// pp-number: digits, identifier chars, '.', and exponent signs.
			kind = KindNumber
			i++
			for i < n {
				d := s[i]
				if isIdentCont(d) || d == '.' {
					i++
					continue
				}
				if (d == '+' || d == '-') && (s[i-1] == 'e' || s[i-1] == 'E' || s[i-1] == 'p' || s[i-1] == 'P') {
					i++
					continue
				}
				break
			}
		case c == '"':
			kind = KindString
			i = scanLiteral(s, i, '"')
		case c == '\'':
			kind = KindChar
			i = scanLiteral(s, i, '\'')
		default:
			if p := matchPunct(s[i:]); p != "" {
				kind = KindPunct
				i += len(p)
			} else {
				kind = KindOther
				i++
			}
		}
		out = append(out, Token{Kind: kind, Text: s[start:i], WS: ws})
		ws = false
	}
	return out
}

// scanLiteral scans a string or char literal starting at the opening quote
// s[i]==q and returns the index just past the closing quote (or end of
// line if unterminated).
func scanLiteral(s string, i int, q byte) int {
	i++ // opening quote
	n := len(s)
	for i < n {
		switch s[i] {
		case '\\':
			i += 2
		case q:
			return i + 1
		default:
			i++
		}
	}
	return n
}

func matchPunct(s string) string {
	for _, p := range punctuators {
		if strings.HasPrefix(s, p) {
			return p
		}
	}
	return ""
}

// renderTokens reconstructs source text from tokens, inserting a space
// where the original had whitespace or where gluing two tokens would merge
// them into one.
func renderTokens(ts []Token) string {
	var b strings.Builder
	for i, t := range ts {
		if i > 0 && (t.WS || needsSpace(ts[i-1], t)) {
			b.WriteByte(' ')
		}
		b.WriteString(t.Text)
	}
	return b.String()
}

// needsSpace reports whether a and b would lex as a different token
// sequence if concatenated directly.
func needsSpace(a, b Token) bool {
	if a.Text == "" || b.Text == "" {
		return false
	}
	la := a.Text[len(a.Text)-1]
	fb := b.Text[0]
	switch {
	case isIdentCont(la) && isIdentCont(fb):
		return true
	case a.Kind == KindNumber && (fb == '.' || fb == '+' || fb == '-'):
		return true
	case a.Kind == KindPunct && b.Kind == KindPunct:
		// Separate only when gluing would form a longer punctuator
		// ("+ +" would lex as "++", but "( (" is fine).
		return len(matchPunct(a.Text+b.Text)) > len(a.Text)
	}
	return false
}
