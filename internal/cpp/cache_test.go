package cpp

import (
	"fmt"
	"sync"
	"testing"
)

// Two different paths carrying identical content must share one cache
// entry: one miss for the first scan, hits for every later one. This is
// the "keyed by content identity" contract — the old key mixed the path
// in, so identical headers reached via different paths never deduped.
func TestTokenCacheDedupesAcrossPaths(t *testing.T) {
	c := NewTokenCache()
	const content = "#define A 1\nint a = A;\n"

	l1, t1 := c.scan("include/linux/a.h", content)
	l2, t2 := c.scan("arch/x86/include/a_copy.h", content)

	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats after two same-content scans = %d hits / %d misses, want 1/1", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("Len() = %d, want 1 shared entry", c.Len())
	}
	// Same entry, not merely equal: the memoized slices must be shared.
	if &l1[0] != &l2[0] || &t1[0] != &t2[0] {
		t.Fatalf("same-content scans returned distinct memoized slices")
	}

	// Different content still misses.
	c.scan("include/linux/a.h", content+"\n// trailing\n")
	if hits, misses := c.Stats(); hits != 1 || misses != 2 {
		t.Fatalf("stats after distinct-content scan = %d hits / %d misses, want 1/2", hits, misses)
	}
}

// A bucket holding an entry for *different* content (as a real FNV-64
// collision would produce) must never serve that entry's tokens: lookups
// verify content, so a collision only widens the chain. FNV-64 preimages
// are impractical to craft, so the test plants the colliding-bucket state
// directly — exactly the state a collision would leave behind.
func TestTokenCacheCollisionNeverServesWrongTokens(t *testing.T) {
	c := NewTokenCache()
	want := "int real_content;\n"
	imposterContent := "int imposter;\n"
	key := contentKey(want)

	// Plant an imposter entry in want's bucket, pre-lexed from different
	// content, as if contentKey(imposterContent) had collided with key.
	imposter := &cachedFile{content: imposterContent, path: "imposter.h"}
	imposter.once.Do(func() {
		imposter.lines = logicalLines(imposterContent)
		imposter.toks = [][]Token{Lex("int imposter ;")}
	})
	sh := c.shardFor(key)
	sh.entries[key] = append(sh.entries[key], imposter)

	lines, toks := c.scan("real.h", want)
	if len(lines) != 1 || lines[0].text != "int real_content;" {
		t.Fatalf("scan served wrong logical lines: %+v", lines)
	}
	if len(toks) != 1 || len(toks[0]) != 3 || toks[0][1].Text != "real_content" {
		t.Fatalf("scan served wrong token stream: %+v", toks)
	}
	// The real content was a miss (chain scan found no content match) and
	// both entries now chain under one bucket.
	if hits, misses := c.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 0/1", hits, misses)
	}
	if got := len(sh.entries[key]); got != 2 {
		t.Fatalf("bucket chain length = %d, want 2 (imposter + real)", got)
	}

	// Re-scanning the real content hits its own entry, not the imposter's.
	_, toks2 := c.scan("real.h", want)
	if toks2[0][1].Text != "real_content" {
		t.Fatalf("re-scan served imposter tokens: %+v", toks2)
	}
}

// Concurrent first scans of one content elect exactly one lexer: misses
// stay equal to the number of distinct contents at any concurrency.
func TestTokenCacheConcurrentElection(t *testing.T) {
	c := NewTokenCache()
	const goroutines = 32
	const distinct = 7
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < distinct; k++ {
				content := fmt.Sprintf("int v%d = %d;\n", k, k)
				_, toks := c.scan(fmt.Sprintf("dir%d/f%d.h", g, k), content)
				if len(toks) != 1 {
					t.Errorf("scan(%d) returned %d token lines, want 1", k, len(toks))
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if misses != distinct {
		t.Fatalf("misses = %d, want %d (one per distinct content)", misses, distinct)
	}
	if hits != goroutines*distinct-distinct {
		t.Fatalf("hits = %d, want %d", hits, goroutines*distinct-distinct)
	}
}
