package eval

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The default JSON report must be byte-identical at any worker count: the
// paper's evaluation is only dependable if parallelizing it cannot change
// its numbers. This covers report contents AND the pipeline section's
// cache counters (computed-exactly-once semantics).
func TestJSONWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	base := Params{TreeSeed: 41, HistorySeed: 42, ModelSeed: 43, TreeScale: 0.15, CommitScale: 0.008}

	run := func(workers, inflight int) []byte {
		p := base
		p.Workers = workers
		p.InFlight = inflight
		r, err := Execute(p)
		if err != nil {
			t.Fatalf("Execute(workers=%d): %v", workers, err)
		}
		if r.Pipeline.Checked == 0 {
			t.Fatalf("workers=%d checked no patches", workers)
		}
		if r.Pipeline.ConfigCache.Misses == 0 || r.Pipeline.TokenCache.Misses == 0 {
			t.Fatalf("workers=%d: caches unused: %+v", workers, r.Pipeline)
		}
		js, err := r.JSON(true)
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		return js
	}

	one := run(1, 0)
	four := run(4, 8)
	if !bytes.Equal(one, four) {
		t.Error("JSON reports differ between -workers=1 and -workers=4")
	}
	// A tight in-flight bound changes scheduling but not the report.
	tight := run(4, 4)
	if !bytes.Equal(one, tight) {
		t.Error("JSON reports differ under a tight in-flight bound")
	}
}

// With the static presence pre-pass enabled, the report must stay
// worker-count-invariant too — pruning decisions, skip counters and the
// disagreement list are all made from shared memoized state — and the
// static/dynamic cross-check must come back clean on a healthy run.
func TestJSONWorkerInvariantWithStaticPresence(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	base := Params{TreeSeed: 41, HistorySeed: 42, ModelSeed: 43, TreeScale: 0.15, CommitScale: 0.008}
	base.Checker.StaticPresence = true

	run := func(workers, inflight int) ([]byte, *Run) {
		p := base
		p.Workers = workers
		p.InFlight = inflight
		r, err := Execute(p)
		if err != nil {
			t.Fatalf("Execute(workers=%d): %v", workers, err)
		}
		js, err := r.JSON(true)
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		return js, r
	}

	one, rOne := run(1, 0)
	four, _ := run(4, 8)
	if !bytes.Equal(one, four) {
		t.Error("static-presence JSON reports differ between -workers=1 and -workers=4")
	}

	ps := rOne.ComputePresenceStats()
	if ps.Disagreements != 0 {
		t.Errorf("static/dynamic cross-check failed %d times", ps.Disagreements)
	}
	var decoded struct {
		Presence *JSONPresence `json:"presence"`
	}
	if err := json.Unmarshal(one, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Presence == nil {
		t.Fatal("presence section missing with StaticPresence enabled")
	}
	if decoded.Presence.Disagreements != 0 {
		t.Errorf("JSON disagreements = %d, want 0", decoded.Presence.Disagreements)
	}

	// And the default (pre-pass off) report must not grow a presence
	// section.
	off, err := Execute(base.withoutStatic())
	if err != nil {
		t.Fatal(err)
	}
	js, err := off.JSON(false)
	if err != nil {
		t.Fatal(err)
	}
	var offDecoded struct {
		Presence *JSONPresence `json:"presence"`
	}
	if err := json.Unmarshal(js, &offDecoded); err != nil {
		t.Fatal(err)
	}
	if offDecoded.Presence != nil {
		t.Error("presence section present without StaticPresence")
	}
}

func (p Params) withoutStatic() Params {
	p.Checker.StaticPresence = false
	p.Workers = 2
	return p
}

// The volatile runtime section is opt-in and absent from the default
// report.
func TestJSONRuntimeSectionOptIn(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	r, err := Execute(Params{TreeSeed: 41, HistorySeed: 42, ModelSeed: 43,
		TreeScale: 0.15, CommitScale: 0.008, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := r.JSON(false)
	if err != nil {
		t.Fatal(err)
	}
	withRT, err := r.JSONWithRuntime(false)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Pipeline struct {
			Patches int                  `json:"patches"`
			Runtime *JSONPipelineRuntime `json:"runtime"`
		} `json:"pipeline"`
	}
	if err := json.Unmarshal(plain, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Pipeline.Runtime != nil {
		t.Error("default JSON carries the volatile runtime section")
	}
	if decoded.Pipeline.Patches == 0 {
		t.Error("pipeline section missing from default JSON")
	}
	if err := json.Unmarshal(withRT, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Pipeline.Runtime == nil {
		t.Fatal("JSONWithRuntime lacks the runtime section")
	}
	if decoded.Pipeline.Runtime.Workers != 2 {
		t.Errorf("runtime workers = %d, want 2", decoded.Pipeline.Runtime.Workers)
	}
	if r.RenderPipeline(true) == r.RenderPipeline(false) {
		t.Error("RenderPipeline(true) should add the runtime lines")
	}
}
