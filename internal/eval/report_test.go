package eval

import (
	"encoding/json"
	"strings"
	"testing"

	"jmake/internal/core"
)

func TestTableRenderings(t *testing.T) {
	r := smallRun(t)

	t3 := r.ComputeTableIII().Render()
	for _, want := range []string{".c files only", ".h files only", "both .c and .h files", "%"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table III missing %q:\n%s", want, t3)
		}
	}

	t4 := r.ComputeTableIV(false).Render()
	if !strings.Contains(t4, "change under ifdef variable not set by allyesconfig") {
		t.Errorf("Table IV rendering:\n%s", t4)
	}

	arch := r.ComputeArchStats().Render()
	for _, want := range []string{"x86_64 alone", "architecture usefulness"} {
		if !strings.Contains(arch, want) {
			t.Errorf("arch stats missing %q:\n%s", want, arch)
		}
	}

	t2 := r.TableII()
	if !strings.Contains(t2, "file cv") {
		t.Errorf("Table II header missing:\n%s", t2)
	}
}

func TestDurationsFigureAccessors(t *testing.T) {
	r := smallRun(t)
	d := r.ComputeDurations()
	figs := []interface{ Len() int }{d.Fig4a(), d.Fig4b(), d.Fig4c(), d.Fig5(), d.Fig6()}
	for i, f := range figs {
		if f.Len() == 0 {
			t.Errorf("figure %d has no samples", i)
		}
	}
}

func TestEscapeReasonStringsTotal(t *testing.T) {
	// Every reason has a distinct, non-empty rendering (Table IV rows).
	seen := map[string]bool{}
	for _, r := range []core.EscapeReason{
		core.EscapeIfdefNotAllyes, core.EscapeIfdefNeverSet,
		core.EscapeIfdefModule, core.EscapeIfndefOrElse,
		core.EscapeBothBranches, core.EscapeIfZero,
		core.EscapeUnusedMacro, core.EscapeOther,
	} {
		s := r.String()
		if s == "" || seen[s] {
			t.Errorf("reason %d renders %q (empty or duplicate)", r, s)
		}
		seen[s] = true
	}
}

func TestSkippedFractionRealistic(t *testing.T) {
	r := smallRun(t)
	frac := float64(r.SkippedCount()) / float64(len(r.Results))
	// Paper: 2099/12946 = 16.2%.
	if frac < 0.08 || frac > 0.26 {
		t.Errorf("skipped fraction = %.2f, want ~0.16", frac)
	}
}

func TestJanitorResultsTaggedConsistently(t *testing.T) {
	r := smallRun(t)
	janitorTagged := 0
	for _, res := range r.Results {
		if res.IsJanitor {
			janitorTagged++
			if !r.JanitorEmails[res.Author] {
				t.Errorf("patch by %s tagged janitor but not in email set", res.Author)
			}
		}
	}
	if janitorTagged == 0 {
		t.Error("no janitor-tagged patches")
	}
}

func TestJSONReport(t *testing.T) {
	r := smallRun(t)
	data, err := r.JSON(true)
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var decoded JSONReport
	if uerr := json.Unmarshal(data, &decoded); uerr != nil {
		t.Fatalf("round trip: %v", uerr)
	}
	if decoded.Commits != len(r.Results) {
		t.Errorf("Commits = %d, want %d", decoded.Commits, len(r.Results))
	}
	if decoded.Summary.TotalAll == 0 || len(decoded.TableII) == 0 {
		t.Errorf("summary/table2 empty: %+v", decoded.Summary)
	}
	fig, ok := decoded.Figures["fig5_overall"]
	if !ok || fig.N == 0 || len(fig.Points) == 0 {
		t.Errorf("fig5 = %+v", fig)
	}
}
