package eval

// This file holds the data types for the reactive (commit-stream) benchmark.
// They live in eval — next to the other BENCH_pipeline.json sections — so
// internal/incr can populate them without eval importing incr.

// ReactiveCommit is one replayed commit of a reactive benchmark stream.
type ReactiveCommit struct {
	Commit string `json:"commit"`
	// Files counts the commit's checker-relevant files; Touched counts
	// every path the commit changed.
	Files   int `json:"files"`
	Touched int `json:"touched"`
	// Structural marks commits whose paths forced session invalidation
	// (Kbuild metadata, arch/, Kconfig, Makefiles).
	Structural bool `json:"structural"`
	// InvalidatedTUs counts translation units whose transitive inputs the
	// commit changed, per the reverse dependency index.
	InvalidatedTUs int `json:"invalidated_tus"`
	// VirtualSeconds is the report's full recompute price — byte-identical
	// to a cold check, so it doubles as the cold-cost baseline.
	VirtualSeconds float64 `json:"virtual_seconds"`
	// EffectiveSeconds is the honest warm cost: VirtualSeconds minus what
	// the session's warmth ledgers absorbed during this commit.
	EffectiveSeconds float64 `json:"effective_seconds"`
	// EffectiveRatio is EffectiveSeconds / VirtualSeconds (1 when the
	// virtual cost is zero).
	EffectiveRatio float64 `json:"effective_ratio"`
}

// ReactiveReport is the `reactive` section of BENCH_pipeline.json: a
// follower replaying a commit stream against one warm session, showing
// per-commit cost proportional to the diff rather than the tree.
type ReactiveReport struct {
	Commits               int     `json:"commits"`
	TotalVirtualSeconds   float64 `json:"total_virtual_seconds"`
	TotalEffectiveSeconds float64 `json:"total_effective_seconds"`
	// SmallCommits counts the gate population: non-structural commits
	// touching at most two relevant files, excluding the warm-up prefix;
	// SmallCommitMeanRatio is their mean effective ratio — the number the
	// <30% acceptance gate checks.
	SmallCommits         int              `json:"small_commits"`
	SmallCommitMeanRatio float64          `json:"small_commit_mean_ratio"`
	PerCommit            []ReactiveCommit `json:"per_commit"`
}
