package eval

import "encoding/json"

// JSONReport is the machine-readable form of a completed evaluation: every
// table and figure in one marshalable structure, for downstream analysis
// pipelines.
type JSONReport struct {
	Commits int `json:"commits"`
	Skipped int `json:"skipped"`

	Summary struct {
		CertifiedAll            int `json:"certified_all"`
		TotalAll                int `json:"total_all"`
		CertifiedJanitor        int `json:"certified_janitor"`
		TotalJanitor            int `json:"total_janitor"`
		Untreatable             int `json:"untreatable"`
		SingleInvocationPatches int `json:"single_invocation_patches"`
	} `json:"summary"`

	TableII []JSONJanitor `json:"table2_janitors"`

	TableIII struct {
		All     JSONMix `json:"all"`
		Janitor JSONMix `json:"janitor"`
	} `json:"table3_patch_mix"`

	TableIV struct {
		Janitor map[string]int `json:"janitor"`
		All     map[string]int `json:"all"`
	} `json:"table4_escape_reasons"`

	Arch struct {
		HostSufficedC int            `json:"host_sufficed_c"`
		BeyondHostC   int            `json:"beyond_host_c"`
		HostSufficedH int            `json:"host_sufficed_h"`
		BeyondHostH   int            `json:"beyond_host_h"`
		PerArch       map[string]int `json:"per_arch"`
	} `json:"arch"`

	Configs ConfigStats `json:"configs"`
	CStats  CStats      `json:"c_stats"`
	HStats  HStats      `json:"h_stats"`

	Pipeline JSONPipeline `json:"pipeline"`

	// Presence reports the static presence-condition pre-pass; present only
	// when the run enabled it, so default reports are unchanged.
	Presence *JSONPresence `json:"presence,omitempty"`

	Faults struct {
		Retries                int            `json:"retries"`
		InjectedFaults         int            `json:"injected_faults"`
		EventsByKind           map[string]int `json:"events_by_kind,omitempty"`
		BudgetExhaustedPatches int            `json:"budget_exhausted_patches"`
		BudgetExhaustedFiles   int            `json:"budget_exhausted_files"`
		QuarantinedArchPatches int            `json:"quarantined_arch_patches"`
		BackoffSeconds         float64        `json:"backoff_seconds"`
	} `json:"faults"`

	Figures map[string]JSONCDF `json:"figures"`
}

// JSONJanitor is one Table II row.
type JSONJanitor struct {
	Name           string  `json:"name"`
	Patches        int     `json:"patches"`
	Subsystems     int     `json:"subsystems"`
	Lists          int     `json:"lists"`
	MaintainerFrac float64 `json:"maintainer_frac"`
	FileCV         float64 `json:"file_cv"`
	WindowPatches  int     `json:"window_patches"`
}

// JSONMix is one Table III column.
type JSONMix struct {
	COnly int `json:"c_only"`
	HOnly int `json:"h_only"`
	Both  int `json:"both"`
	Total int `json:"total"`
}

// JSONPipeline is the machine-readable pipeline section. Only fields that
// are invariant under the worker count AND the result-cache state appear
// by default; Runtime carries the volatile figures (scheduling, plus the
// token- and result-cache counters, which depend on cache warmth) and is
// populated solely by JSONWithRuntime, keeping the default report
// byte-identical at any -workers setting and any cache state.
type JSONPipeline struct {
	Patches        int                  `json:"patches"`
	Checked        int                  `json:"checked"`
	ConfigCache    JSONCacheStats       `json:"config_cache"`
	VirtualSeconds StageVirtual         `json:"virtual_seconds"`
	StaticSkippedI int                  `json:"static_skipped_make_i,omitempty"`
	StaticSkippedO int                  `json:"static_skipped_make_o,omitempty"`
	Runtime        *JSONPipelineRuntime `json:"runtime,omitempty"`
}

// JSONPresence is the machine-readable static-analysis section. Every
// field is deterministic and worker-count-invariant; disagreements must be
// zero on a healthy run (each entry is a static/dynamic cross-check
// failure, i.e. an analysis bug).
type JSONPresence struct {
	StaticDeadFiles int `json:"static_dead_files"`
	StaticDeadLines int `json:"static_dead_lines"`
	SkippedMakeI    int `json:"skipped_make_i"`
	SkippedMakeO    int `json:"skipped_make_o"`
	Disagreements   int `json:"disagreements"`
}

// JSONCacheStats is one shared cache's counters.
type JSONCacheStats struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// JSONPipelineRuntime is the volatile part of the pipeline section. The
// token-cache counters live here (not in the default section) because a
// warm result cache serves verdicts without re-lexing, shifting the
// token-cache hit/miss split with cache warmth.
type JSONPipelineRuntime struct {
	Workers       int              `json:"workers"`
	InFlight      int              `json:"in_flight"`
	MaxBuffered   int              `json:"max_buffered"`
	WallSeconds   float64          `json:"wall_seconds"`
	PatchesPerSec float64          `json:"patches_per_sec"`
	TokenCache    JSONCacheStats   `json:"token_cache"`
	ResultCache   *JSONResultCache `json:"result_cache,omitempty"`
}

// JSONResultCache is the shared compile-result cache section, present in
// runtime reports when the cache is enabled.
type JSONResultCache struct {
	MakeI            JSONResultCacheStage `json:"make_i"`
	MakeO            JSONResultCacheStage `json:"make_o"`
	Entries          int                  `json:"entries"`
	Bytes            int64                `json:"bytes"`
	LoadedEntries    int                  `json:"loaded_entries"`
	SavedVirtualSecs float64              `json:"saved_virtual_seconds"`
	SavedMakeISecs   float64              `json:"saved_make_i_seconds"`
	SavedMakeOSecs   float64              `json:"saved_make_o_seconds"`
	EffectiveSecs    float64              `json:"effective_seconds"`
}

// JSONResultCacheStage is one stage's result-cache counters.
type JSONResultCacheStage struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Deduped     uint64 `json:"deduped"`
	BytesServed uint64 `json:"bytes_served"`
	BytesStored uint64 `json:"bytes_stored"`
}

// JSONCDF summarizes one figure's distribution in seconds.
type JSONCDF struct {
	N      int          `json:"n"`
	P50    float64      `json:"p50"`
	P82    float64      `json:"p82"`
	P95    float64      `json:"p95"`
	P98    float64      `json:"p98"`
	Max    float64      `json:"max"`
	Points [][2]float64 `json:"points,omitempty"`
}

// JSON builds the machine-readable report. points controls whether the
// figures carry full CDF point series. The output is deterministic: two
// same-seed runs produce byte-identical bytes regardless of worker count.
func (r *Run) JSON(points bool) ([]byte, error) {
	return r.buildJSON(points, false)
}

// JSONWithRuntime is JSON plus the volatile pipeline runtime section
// (wall clock, throughput, worker configuration). Its output is NOT
// reproducible across machines or worker counts.
func (r *Run) JSONWithRuntime(points bool) ([]byte, error) {
	return r.buildJSON(points, true)
}

func (r *Run) buildJSON(points, runtime bool) ([]byte, error) {
	var out JSONReport
	out.Commits = len(r.Results)
	out.Skipped = r.SkippedCount()

	s := r.ComputeSummary()
	out.Summary.CertifiedAll = s.CertifiedAll
	out.Summary.TotalAll = s.TotalAll
	out.Summary.CertifiedJanitor = s.CertifiedJanitor
	out.Summary.TotalJanitor = s.TotalJanitor
	out.Summary.Untreatable = s.Untreatable
	out.Summary.SingleInvocationPatches = s.SingleInvocationPatches

	for _, j := range r.Janitors {
		out.TableII = append(out.TableII, JSONJanitor{
			Name: j.Name, Patches: j.Patches, Subsystems: j.Subsystems,
			Lists: j.Lists, MaintainerFrac: j.MaintainerFrac,
			FileCV: j.FileCV, WindowPatches: j.WindowPatches,
		})
	}

	t3 := r.ComputeTableIII()
	out.TableIII.All = JSONMix{t3.All.COnly, t3.All.HOnly, t3.All.Both, t3.All.Total}
	out.TableIII.Janitor = JSONMix{t3.Janitor.COnly, t3.Janitor.HOnly, t3.Janitor.Both, t3.Janitor.Total}

	out.TableIV.Janitor = escapeCountsByName(r.ComputeTableIV(true))
	out.TableIV.All = escapeCountsByName(r.ComputeTableIV(false))

	arch := r.ComputeArchStats()
	out.Arch.HostSufficedC = arch.HostSufficedC
	out.Arch.BeyondHostC = arch.BeyondHostC
	out.Arch.HostSufficedH = arch.HostSufficedH
	out.Arch.BeyondHostH = arch.BeyondHostH
	out.Arch.PerArch = arch.PerArch

	out.Configs = r.ComputeConfigStats()
	out.CStats = r.ComputeCStats(false)
	out.HStats = r.ComputeHStats(false)

	pm := r.Pipeline
	out.Pipeline = JSONPipeline{
		Patches:        pm.Patches,
		Checked:        pm.Checked,
		ConfigCache:    JSONCacheStats{pm.ConfigCache.Hits, pm.ConfigCache.Misses, pm.ConfigCache.HitRate()},
		VirtualSeconds: pm.Stages,
		StaticSkippedI: pm.StaticSkippedMakeI,
		StaticSkippedO: pm.StaticSkippedMakeO,
	}
	if r.Params.Checker.StaticPresence {
		ps := r.ComputePresenceStats()
		out.Presence = &JSONPresence{
			StaticDeadFiles: ps.StaticDeadFiles,
			StaticDeadLines: ps.StaticDeadLines,
			SkippedMakeI:    ps.SkippedMakeI,
			SkippedMakeO:    ps.SkippedMakeO,
			Disagreements:   ps.Disagreements,
		}
	}
	if runtime {
		rt := &JSONPipelineRuntime{
			Workers:       pm.Workers,
			InFlight:      pm.InFlight,
			MaxBuffered:   pm.MaxBuffered,
			WallSeconds:   pm.WallSeconds,
			PatchesPerSec: pm.PatchesPerSec,
			TokenCache:    JSONCacheStats{pm.TokenCache.Hits, pm.TokenCache.Misses, pm.TokenCache.HitRate()},
		}
		if rc := pm.ResultCache; rc.Enabled {
			rt.ResultCache = &JSONResultCache{
				MakeI:            JSONResultCacheStage(rc.MakeI),
				MakeO:            JSONResultCacheStage(rc.MakeO),
				Entries:          rc.Entries,
				Bytes:            rc.Bytes,
				LoadedEntries:    rc.LoadedEntries,
				SavedVirtualSecs: rc.SavedVirtualSeconds,
				SavedMakeISecs:   rc.SavedMakeISeconds,
				SavedMakeOSecs:   rc.SavedMakeOSeconds,
				EffectiveSecs:    pm.EffectiveSeconds(),
			}
		}
		out.Pipeline.Runtime = rt
	}

	fs := r.ComputeFaultStats()
	out.Faults.Retries = fs.Retries
	out.Faults.InjectedFaults = fs.InjectedFaults
	if len(fs.EventsByKind) > 0 {
		out.Faults.EventsByKind = fs.EventsByKind
	}
	out.Faults.BudgetExhaustedPatches = fs.BudgetExhaustedPatches
	out.Faults.BudgetExhaustedFiles = fs.BudgetExhaustedFiles
	out.Faults.QuarantinedArchPatches = fs.QuarantinedArchPatches
	out.Faults.BackoffSeconds = fs.BackoffTotal.Seconds()

	d := r.ComputeDurations()
	out.Figures = map[string]JSONCDF{
		"fig4a_config": cdfJSON(d.Fig4a(), points),
		"fig4b_make_i": cdfJSON(d.Fig4b(), points),
		"fig4c_make_o": cdfJSON(d.Fig4c(), points),
		"fig5_overall": cdfJSON(d.Fig5(), points),
		"fig6_janitor": cdfJSON(d.Fig6(), points),
	}
	return json.MarshalIndent(out, "", "  ")
}

func escapeCountsByName(t TableIV) map[string]int {
	out := make(map[string]int, len(t.Counts))
	for reason, n := range t.Counts {
		out[reason.String()] = n
	}
	out["affected_files_total"] = t.AffectedFiles
	return out
}

type cdfLike interface {
	Len() int
	Percentile(float64) float64
	Max() float64
	Points(int) [][2]float64
}

func cdfJSON(c cdfLike, points bool) JSONCDF {
	out := JSONCDF{
		N:   c.Len(),
		P50: c.Percentile(0.50),
		P82: c.Percentile(0.82),
		P95: c.Percentile(0.95),
		P98: c.Percentile(0.98),
		Max: c.Max(),
	}
	if points {
		out.Points = c.Points(50)
	}
	return out
}
