package eval

import (
	"encoding/json"
	"fmt"
	"time"

	"jmake/internal/trace"
)

// BenchWorkerResult is one worker-count pass over the window.
type BenchWorkerResult struct {
	Workers       int     `json:"workers"`
	WallSeconds   float64 `json:"wall_seconds"`
	PatchesPerSec float64 `json:"patches_per_sec"`
	Checked       int     `json:"checked"`
}

// BenchCacheResult is one cache-state pass (cold = empty -cache-dir,
// warm = same dir on the second pass). EffectiveVirtualSeconds is the
// run's honest virtual cost: the full recompute price minus what the
// result cache saved (probes charged in place of compiles).
type BenchCacheResult struct {
	WallSeconds             float64 `json:"wall_seconds"`
	TotalVirtualSeconds     float64 `json:"total_virtual_seconds"`
	SavedVirtualSeconds     float64 `json:"saved_virtual_seconds"`
	EffectiveVirtualSeconds float64 `json:"effective_virtual_seconds"`
	MakeIHits               uint64  `json:"make_i_hits"`
	MakeIMisses             uint64  `json:"make_i_misses"`
	MakeOHits               uint64  `json:"make_o_hits"`
	MakeOMisses             uint64  `json:"make_o_misses"`
	LoadedEntries           int     `json:"loaded_entries"`
}

// BenchSpanStat attributes the window's virtual time — and the result
// cache's effective-seconds savings — to one span kind. Counts and
// virtual seconds come from the warm pass's merged trace (deterministic);
// the saved seconds come from the cache's per-stage ledger, so
// make.i/make.o carry the attribution and the other kinds report zero.
type BenchSpanStat struct {
	Kind                string  `json:"kind"`
	Spans               int     `json:"spans"`
	VirtualSeconds      float64 `json:"virtual_seconds"`
	SavedVirtualSeconds float64 `json:"saved_virtual_seconds"`
}

// BenchReport is the output of RunBenchmarks, written by cmd/jmake-bench
// to BENCH_pipeline.json.
type BenchReport struct {
	TreeScale      float64             `json:"tree_scale"`
	CommitScale    float64             `json:"commit_scale"`
	WindowCommits  int                 `json:"window_commits"`
	WorkerSweep    []BenchWorkerResult `json:"worker_sweep"`
	Cold           BenchCacheResult    `json:"cache_cold"`
	Warm           BenchCacheResult    `json:"cache_warm"`
	WarmSavingsPct float64             `json:"warm_savings_pct"`
	Spans          []BenchSpanStat     `json:"spans"`
	// Reactive is the commit-stream follower benchmark (cmd/jmake-bench
	// -reactive); nil when that mode was not run.
	Reactive *ReactiveReport `json:"reactive,omitempty"`
}

// MarshalIndent renders the report as BENCH_pipeline.json content.
func (b *BenchReport) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// RunBenchmarks prepares the evaluation substrate once and then measures
// (a) window throughput at 1/2/4/8 workers with the default in-memory
// result cache, and (b) a cold-then-warm pair of runs against cacheDir,
// which must start empty so the first pass populates the persistent tier
// and the second warm-starts from it. The warm-vs-cold comparison is in
// effective virtual seconds — the deterministic cost-model currency the
// paper reports — so it is machine-independent.
func RunBenchmarks(p Params, cacheDir string) (*BenchReport, error) {
	if cacheDir == "" {
		return nil, fmt.Errorf("eval: RunBenchmarks needs a cache dir")
	}
	run, ids, err := prepare(p)
	if err != nil {
		return nil, err
	}
	rep := &BenchReport{
		TreeScale:     run.Params.TreeScale,
		CommitScale:   run.Params.CommitScale,
		WindowCommits: len(ids),
	}

	if rep.WorkerSweep, err = sweep(run, ids, []int{1, 2, 4, 8}); err != nil {
		return nil, err
	}

	cachePass := func(traced bool) (BenchCacheResult, *Run, error) {
		shell := *run
		shell.Params.CacheDir = cacheDir
		shell.Params.Trace = traced
		if err := shell.checkWindow(ids); err != nil {
			return BenchCacheResult{}, nil, err
		}
		pm := shell.Pipeline
		rc := pm.ResultCache
		return BenchCacheResult{
			WallSeconds:             pm.WallSeconds,
			TotalVirtualSeconds:     pm.Stages.TotalSeconds,
			SavedVirtualSeconds:     rc.SavedVirtualSeconds,
			EffectiveVirtualSeconds: pm.EffectiveSeconds(),
			MakeIHits:               rc.MakeI.Hits,
			MakeIMisses:             rc.MakeI.Misses,
			MakeOHits:               rc.MakeO.Hits,
			MakeOMisses:             rc.MakeO.Misses,
			LoadedEntries:           rc.LoadedEntries,
		}, &shell, nil
	}
	if rep.Cold, _, err = cachePass(false); err != nil {
		return nil, fmt.Errorf("eval: bench cold pass: %w", err)
	}
	var warmRun *Run
	if rep.Warm, warmRun, err = cachePass(true); err != nil {
		return nil, fmt.Errorf("eval: bench warm pass: %w", err)
	}
	if rep.Cold.EffectiveVirtualSeconds > 0 {
		rep.WarmSavingsPct = 100 * (rep.Cold.EffectiveVirtualSeconds - rep.Warm.EffectiveVirtualSeconds) /
			rep.Cold.EffectiveVirtualSeconds
	}
	rep.Spans = benchSpans(warmRun)
	return rep, nil
}

// RunWorkerSweep prepares the evaluation substrate once and measures
// window throughput at each requested worker count, nothing else. It is
// the cheap core of RunBenchmarks, exposed for scaling smoke checks
// (make bench-scaling) that only need the throughput ratio.
func RunWorkerSweep(p Params, workers []int) ([]BenchWorkerResult, error) {
	run, ids, err := prepare(p)
	if err != nil {
		return nil, err
	}
	return sweep(run, ids, workers)
}

// sweep runs the window once per worker count over a shared substrate.
// Each pass gets a fresh Run shell (fresh Session, fresh caches) so no
// pass warms the next one's caches and the comparison stays honest.
func sweep(run *Run, ids []string, workers []int) ([]BenchWorkerResult, error) {
	var out []BenchWorkerResult
	for _, w := range workers {
		shell := *run
		shell.Params.Workers = w
		if err := shell.checkWindow(ids); err != nil {
			return nil, fmt.Errorf("eval: bench workers=%d: %w", w, err)
		}
		out = append(out, BenchWorkerResult{
			Workers:       w,
			WallSeconds:   shell.Pipeline.WallSeconds,
			PatchesPerSec: shell.Pipeline.PatchesPerSec,
			Checked:       shell.Pipeline.Checked,
		})
	}
	return out, nil
}

// benchSpans aggregates the warm pass's merged trace by span kind and
// attributes the result cache's per-stage effective savings to the
// make.i / make.o kinds. The trace itself is deterministic; only the
// saved-seconds columns depend on cache warmth (they are the point).
func benchSpans(run *Run) []BenchSpanStat {
	if run == nil || run.Trace == nil {
		return nil
	}
	counts := make(map[string]int)
	virtual := make(map[string]time.Duration)
	for _, root := range run.Trace.Spans {
		root.Walk(func(s *trace.Span) {
			counts[s.Kind]++
			virtual[s.Kind] += s.Dur()
		})
	}
	saved := map[string]float64{
		trace.KindMakeI: run.Pipeline.ResultCache.SavedMakeISeconds,
		trace.KindMakeO: run.Pipeline.ResultCache.SavedMakeOSeconds,
	}
	var out []BenchSpanStat
	for _, kind := range []string{
		trace.KindConfig, trace.KindMakeI, trace.KindMakeO, trace.KindBackoff,
	} {
		out = append(out, BenchSpanStat{
			Kind:                kind,
			Spans:               counts[kind],
			VirtualSeconds:      virtual[kind].Seconds(),
			SavedVirtualSeconds: saved[kind],
		})
	}
	return out
}
