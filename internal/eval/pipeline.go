package eval

import (
	"fmt"
	"strings"

	"jmake/internal/core"
	"jmake/internal/sched"
)

// StageVirtual breaks the window's virtual build time down by pipeline
// stage. Durations come from the deterministic cost model, so every field
// is worker-count-invariant.
type StageVirtual struct {
	ConfigSeconds  float64 `json:"config_seconds"`
	MakeISeconds   float64 `json:"make_i_seconds"`
	MakeOSeconds   float64 `json:"make_o_seconds"`
	BackoffSeconds float64 `json:"backoff_seconds"`
	TotalSeconds   float64 `json:"total_seconds"`
}

// PipelineMetrics describes the worker pool's execution of one window.
//
// The deterministic fields (patch counts, the config-cache counters,
// virtual stage times) are invariant under the worker count AND the
// result-cache state: caches compute every key exactly once and virtual
// durations are priced by seeded keys, not by scheduling. They belong in
// reproducible reports. The volatile fields (wall clock, throughput,
// reorder high-water mark, the worker/in-flight configuration, and the
// token/result cache counters — which depend on how warm the result
// cache is, since served verdicts skip lexing entirely) describe one
// machine's run of one configuration and are kept out of the default
// JSON report so same-seed runs stay byte-identical at any -workers
// setting and any cache state.
type PipelineMetrics struct {
	// Deterministic.
	Patches     int             // window commits fanned out
	Checked     int             // commits that produced a patch report
	ConfigCache core.CacheStats // shared Kconfig-valuation cache
	Stages      StageVirtual    // virtual seconds per stage
	// StaticSkippedMakeI / StaticSkippedMakeO count compiler invocations
	// the static presence pre-pass pruned (zero unless StaticPresence).
	StaticSkippedMakeI int
	StaticSkippedMakeO int

	// Volatile (scheduling-, machine- and cache-warmth-dependent).
	TokenCache    core.CacheStats // shared lexing cache
	ResultCache   ResultCacheMetrics
	Workers       int
	InFlight      int
	WallSeconds   float64
	PatchesPerSec float64
	MaxBuffered   int
	// Canceled counts window commits never checked because Params.Ctx was
	// done first (always 0 on a run-to-completion evaluation).
	Canceled int
}

// ResultCacheMetrics aggregates the shared compile-result cache
// (internal/ccache). Counters are worker-count-invariant but warmth-
// dependent — a -cache-dir warm start converts misses to hits — so they
// ride with the volatile runtime section in JSON.
type ResultCacheMetrics struct {
	Enabled      bool
	MakeI, MakeO ResultCacheStage
	Entries      int
	Bytes        int64
	// LoadedEntries counts entries warm-started from the persistent tier.
	LoadedEntries int
	// SavedVirtualSeconds is the effective virtual time the cache saved
	// (full recompute price minus charged probe costs). Reported per-patch
	// durations always use the full price; EffectiveSeconds() is the
	// honest cost of the run with probes charged instead.
	SavedVirtualSeconds float64
	// The same ledger attributed per stage (their sum is
	// SavedVirtualSeconds), for span-level savings attribution.
	SavedMakeISeconds float64
	SavedMakeOSeconds float64
}

// ResultCacheStage is one stage's counters.
type ResultCacheStage struct {
	Hits        uint64
	Misses      uint64
	Deduped     uint64
	BytesServed uint64
	BytesStored uint64
}

// EffectiveSeconds is the window's virtual build time with cache probes
// charged in place of the compiles they replaced.
func (pm PipelineMetrics) EffectiveSeconds() float64 {
	return pm.Stages.TotalSeconds - pm.ResultCache.SavedVirtualSeconds
}

// computePipelineMetrics folds the scheduler's counters and the merged
// results into the run's pipeline section. The per-stage sums iterate
// results in submission order, so even the floating-point accumulation is
// reproducible.
func computePipelineMetrics(met sched.Metrics, results []PatchResult, session *core.Session) PipelineMetrics {
	pm := PipelineMetrics{
		Patches:       met.Items,
		ConfigCache:   session.ConfigCacheStats(),
		TokenCache:    session.TokenCacheStats(),
		Workers:       met.Workers,
		InFlight:      met.InFlight,
		WallSeconds:   met.Wall.Seconds(),
		PatchesPerSec: met.ItemsPerSec,
		MaxBuffered:   met.MaxBuffered,
		Canceled:      met.Canceled,
	}
	if rc, ok := session.ResultCacheStats(); ok {
		pm.ResultCache = ResultCacheMetrics{
			Enabled:             true,
			MakeI:               ResultCacheStage(rc.MakeI),
			MakeO:               ResultCacheStage(rc.MakeO),
			Entries:             rc.Entries,
			Bytes:               rc.Bytes,
			LoadedEntries:       rc.LoadedEntries,
			SavedVirtualSeconds: rc.SavedVirtual.Seconds(),
			SavedMakeISeconds:   rc.SavedMakeI.Seconds(),
			SavedMakeOSeconds:   rc.SavedMakeO.Seconds(),
		}
	}
	for _, res := range results {
		if res.Report == nil {
			continue
		}
		pm.Checked++
		for _, d := range res.Report.ConfigDurations {
			pm.Stages.ConfigSeconds += d.Seconds()
		}
		for _, d := range res.Report.MakeIDurations {
			pm.Stages.MakeISeconds += d.Seconds()
		}
		for _, d := range res.Report.MakeODurations {
			pm.Stages.MakeOSeconds += d.Seconds()
		}
		for _, d := range res.Report.BackoffDurations {
			pm.Stages.BackoffSeconds += d.Seconds()
		}
		pm.Stages.TotalSeconds += res.Report.Total.Seconds()
		pm.StaticSkippedMakeI += res.Report.StaticSkippedMakeI
		pm.StaticSkippedMakeO += res.Report.StaticSkippedMakeO
	}
	return pm
}

// RenderPipeline formats the pipeline section for the text report.
// runtime additionally prints the volatile scheduling figures.
func (r *Run) RenderPipeline(runtime bool) string {
	pm := r.Pipeline
	var b strings.Builder
	fmt.Fprintf(&b, "Pipeline\n")
	fmt.Fprintf(&b, "  patches fanned out:   %d (%d checked)\n", pm.Patches, pm.Checked)
	fmt.Fprintf(&b, "  config cache:         %d hits / %d misses (%.1f%% hit rate)\n",
		pm.ConfigCache.Hits, pm.ConfigCache.Misses, 100*pm.ConfigCache.HitRate())
	fmt.Fprintf(&b, "  token cache:          %d hits / %d misses (%.1f%% hit rate)\n",
		pm.TokenCache.Hits, pm.TokenCache.Misses, 100*pm.TokenCache.HitRate())
	fmt.Fprintf(&b, "  virtual stage time:   config %.1fs, make.i %.1fs, make.o %.1fs, backoff %.1fs (total %.1fs)\n",
		pm.Stages.ConfigSeconds, pm.Stages.MakeISeconds, pm.Stages.MakeOSeconds,
		pm.Stages.BackoffSeconds, pm.Stages.TotalSeconds)
	if pm.StaticSkippedMakeI > 0 || pm.StaticSkippedMakeO > 0 {
		fmt.Fprintf(&b, "  static pruning:       skipped %d make.i, %d make.o invocations\n",
			pm.StaticSkippedMakeI, pm.StaticSkippedMakeO)
	}
	if rc := pm.ResultCache; rc.Enabled {
		fmt.Fprintf(&b, "  result cache:         make.i %d/%d hits (%d deduped), make.o %d/%d hits, %d entries (%.1f MB)\n",
			rc.MakeI.Hits, rc.MakeI.Hits+rc.MakeI.Misses, rc.MakeI.Deduped,
			rc.MakeO.Hits, rc.MakeO.Hits+rc.MakeO.Misses,
			rc.Entries, float64(rc.Bytes)/(1<<20))
		if rc.LoadedEntries > 0 {
			fmt.Fprintf(&b, "  result cache warmth:  %d entries loaded from -cache-dir\n", rc.LoadedEntries)
		}
		fmt.Fprintf(&b, "  result cache effect:  saved %.1f virtual s (effective %.1fs of %.1fs)\n",
			rc.SavedVirtualSeconds, pm.EffectiveSeconds(), pm.Stages.TotalSeconds)
	}
	if runtime {
		fmt.Fprintf(&b, "  workers:              %d (in-flight bound %d, max buffered %d)\n",
			pm.Workers, pm.InFlight, pm.MaxBuffered)
		fmt.Fprintf(&b, "  wall clock:           %.2fs (%.1f patches/sec)\n",
			pm.WallSeconds, pm.PatchesPerSec)
	}
	return b.String()
}
