package eval

import (
	"fmt"
	"strings"

	"jmake/internal/core"
	"jmake/internal/sched"
)

// StageVirtual breaks the window's virtual build time down by pipeline
// stage. Durations come from the deterministic cost model, so every field
// is worker-count-invariant.
type StageVirtual struct {
	ConfigSeconds  float64 `json:"config_seconds"`
	MakeISeconds   float64 `json:"make_i_seconds"`
	MakeOSeconds   float64 `json:"make_o_seconds"`
	BackoffSeconds float64 `json:"backoff_seconds"`
	TotalSeconds   float64 `json:"total_seconds"`
}

// PipelineMetrics describes the worker pool's execution of one window.
//
// The deterministic fields (patch counts, cache counters, virtual stage
// times) are invariant under the worker count: caches compute every key
// exactly once and virtual durations are priced by seeded keys, not by
// scheduling. They belong in reproducible reports. The volatile fields
// (wall clock, throughput, reorder high-water mark, and the worker/
// in-flight configuration itself) describe one machine's run of one
// configuration and are kept out of the default JSON report so same-seed
// runs stay byte-identical at any -workers setting.
type PipelineMetrics struct {
	// Deterministic.
	Patches     int             // window commits fanned out
	Checked     int             // commits that produced a patch report
	ConfigCache core.CacheStats // shared Kconfig-valuation cache
	TokenCache  core.CacheStats // shared lexing cache
	Stages      StageVirtual    // virtual seconds per stage
	// StaticSkippedMakeI / StaticSkippedMakeO count compiler invocations
	// the static presence pre-pass pruned (zero unless StaticPresence).
	StaticSkippedMakeI int
	StaticSkippedMakeO int

	// Volatile (scheduling- and machine-dependent).
	Workers       int
	InFlight      int
	WallSeconds   float64
	PatchesPerSec float64
	MaxBuffered   int
}

// computePipelineMetrics folds the scheduler's counters and the merged
// results into the run's pipeline section. The per-stage sums iterate
// results in submission order, so even the floating-point accumulation is
// reproducible.
func computePipelineMetrics(met sched.Metrics, results []PatchResult, session *core.Session) PipelineMetrics {
	pm := PipelineMetrics{
		Patches:       met.Items,
		ConfigCache:   session.ConfigCacheStats(),
		TokenCache:    session.TokenCacheStats(),
		Workers:       met.Workers,
		InFlight:      met.InFlight,
		WallSeconds:   met.Wall.Seconds(),
		PatchesPerSec: met.ItemsPerSec,
		MaxBuffered:   met.MaxBuffered,
	}
	for _, res := range results {
		if res.Report == nil {
			continue
		}
		pm.Checked++
		for _, d := range res.Report.ConfigDurations {
			pm.Stages.ConfigSeconds += d.Seconds()
		}
		for _, d := range res.Report.MakeIDurations {
			pm.Stages.MakeISeconds += d.Seconds()
		}
		for _, d := range res.Report.MakeODurations {
			pm.Stages.MakeOSeconds += d.Seconds()
		}
		for _, d := range res.Report.BackoffDurations {
			pm.Stages.BackoffSeconds += d.Seconds()
		}
		pm.Stages.TotalSeconds += res.Report.Total.Seconds()
		pm.StaticSkippedMakeI += res.Report.StaticSkippedMakeI
		pm.StaticSkippedMakeO += res.Report.StaticSkippedMakeO
	}
	return pm
}

// RenderPipeline formats the pipeline section for the text report.
// runtime additionally prints the volatile scheduling figures.
func (r *Run) RenderPipeline(runtime bool) string {
	pm := r.Pipeline
	var b strings.Builder
	fmt.Fprintf(&b, "Pipeline\n")
	fmt.Fprintf(&b, "  patches fanned out:   %d (%d checked)\n", pm.Patches, pm.Checked)
	fmt.Fprintf(&b, "  config cache:         %d hits / %d misses (%.1f%% hit rate)\n",
		pm.ConfigCache.Hits, pm.ConfigCache.Misses, 100*pm.ConfigCache.HitRate())
	fmt.Fprintf(&b, "  token cache:          %d hits / %d misses (%.1f%% hit rate)\n",
		pm.TokenCache.Hits, pm.TokenCache.Misses, 100*pm.TokenCache.HitRate())
	fmt.Fprintf(&b, "  virtual stage time:   config %.1fs, make.i %.1fs, make.o %.1fs, backoff %.1fs (total %.1fs)\n",
		pm.Stages.ConfigSeconds, pm.Stages.MakeISeconds, pm.Stages.MakeOSeconds,
		pm.Stages.BackoffSeconds, pm.Stages.TotalSeconds)
	if pm.StaticSkippedMakeI > 0 || pm.StaticSkippedMakeO > 0 {
		fmt.Fprintf(&b, "  static pruning:       skipped %d make.i, %d make.o invocations\n",
			pm.StaticSkippedMakeI, pm.StaticSkippedMakeO)
	}
	if runtime {
		fmt.Fprintf(&b, "  workers:              %d (in-flight bound %d, max buffered %d)\n",
			pm.Workers, pm.InFlight, pm.MaxBuffered)
		fmt.Fprintf(&b, "  wall clock:           %.2fs (%.1f patches/sec)\n",
			pm.WallSeconds, pm.PatchesPerSec)
	}
	return b.String()
}
