package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"jmake/internal/core"
	"jmake/internal/stats"
)

// forEachFile visits every processed file outcome; janitorOnly restricts
// to janitor patches.
func (r *Run) forEachFile(janitorOnly bool, fn func(res PatchResult, f core.FileOutcome)) {
	for _, res := range r.Results {
		if res.Skipped || res.Report == nil || (janitorOnly && !res.IsJanitor) {
			continue
		}
		for _, f := range res.Report.Files {
			fn(res, f)
		}
	}
}

// forEachPatch visits every processed (non-skipped) patch.
func (r *Run) forEachPatch(janitorOnly bool, fn func(res PatchResult)) {
	for _, res := range r.Results {
		if res.Skipped || res.Report == nil || (janitorOnly && !res.IsJanitor) {
			continue
		}
		fn(res)
	}
}

// TableIII is the patch-mix characterization.
type TableIII struct {
	All, Janitor struct {
		COnly, HOnly, Both, Total int
	}
}

// ComputeTableIII reproduces Table III: how many patches touch only .c
// files, only .h files, or both.
func (r *Run) ComputeTableIII() TableIII {
	var t TableIII
	classify := func(res PatchResult) (c, h bool) {
		for _, f := range res.Report.Files {
			switch f.Kind {
			case core.CFile:
				c = true
			case core.HFile:
				h = true
			}
		}
		return
	}
	r.forEachPatch(false, func(res PatchResult) {
		c, h := classify(res)
		add := func(dst *struct{ COnly, HOnly, Both, Total int }) {
			dst.Total++
			switch {
			case c && h:
				dst.Both++
			case c:
				dst.COnly++
			case h:
				dst.HOnly++
			}
		}
		add(&t.All)
		if res.IsJanitor {
			add(&t.Janitor)
		}
	})
	return t
}

// Render prints Table III in the paper's layout.
func (t TableIII) Render() string {
	tb := stats.NewTable("", "All patches", "Janitor patches")
	pct := func(n, d int) string {
		if d == 0 {
			return "0 (0%)"
		}
		return fmt.Sprintf("%d (%d%%)", n, (100*n+d/2)/d)
	}
	tb.AddRow(".c files only", pct(t.All.COnly, t.All.Total), pct(t.Janitor.COnly, t.Janitor.Total))
	tb.AddRow(".h files only", pct(t.All.HOnly, t.All.Total), pct(t.Janitor.HOnly, t.Janitor.Total))
	tb.AddRow("both .c and .h files", pct(t.All.Both, t.All.Total), pct(t.Janitor.Both, t.Janitor.Total))
	return tb.String()
}

// TableIV counts escape reasons over janitor .c file instances.
type TableIV struct {
	Counts map[core.EscapeReason]int
	// AffectedFiles is the number of affected file instances (a file may
	// exhibit several reasons).
	AffectedFiles int
}

// ComputeTableIV reproduces Table IV: why janitor changed lines escape the
// compiler.
func (r *Run) ComputeTableIV(janitorOnly bool) TableIV {
	t := TableIV{Counts: make(map[core.EscapeReason]int)}
	r.forEachFile(janitorOnly, func(res PatchResult, f core.FileOutcome) {
		if f.Kind != core.CFile || f.Status != core.StatusEscapes {
			return
		}
		t.AffectedFiles++
		seen := map[core.EscapeReason]bool{}
		for _, e := range f.Escapes {
			if !seen[e.Reason] {
				seen[e.Reason] = true
				t.Counts[e.Reason]++
			}
		}
	})
	return t
}

// Render prints Table IV.
func (t TableIV) Render() string {
	tb := stats.NewTable("reason", "affected file instances")
	order := []core.EscapeReason{
		core.EscapeIfdefNotAllyes, core.EscapeIfdefNeverSet,
		core.EscapeIfdefModule, core.EscapeIfndefOrElse,
		core.EscapeBothBranches, core.EscapeIfZero,
		core.EscapeUnusedMacro, core.EscapeOther,
	}
	for _, reason := range order {
		if n := t.Counts[reason]; n > 0 || reason != core.EscapeOther {
			tb.AddRow("change under "+reason.String(), fmt.Sprintf("%d", n))
		}
	}
	return tb.String()
}

// ArchStats aggregates the §V-B architecture-choice findings.
type ArchStats struct {
	// HostSufficedC / HostSufficedH count file instances fully served by
	// the host architecture.
	HostSufficedC, HostSufficedH int
	// BeyondHostC / BeyondHostH needed another architecture.
	BeyondHostC, BeyondHostH int
	// PerArch counts instances for which each architecture contributed.
	PerArch map[string]int
	// JanitorBeyondHostC and JanitorArches mirror the janitor-only text.
	JanitorBeyondHostC int
	JanitorArches      map[string]int
}

// ComputeArchStats reproduces the "Choice of architecture" analysis.
func (r *Run) ComputeArchStats() ArchStats {
	s := ArchStats{PerArch: make(map[string]int), JanitorArches: make(map[string]int)}
	r.forEachFile(false, func(res PatchResult, f core.FileOutcome) {
		if len(f.UsedArches) == 0 {
			return
		}
		for _, a := range f.UsedArches {
			s.PerArch[a]++
			if res.IsJanitor && a != "x86_64" {
				s.JanitorArches[a]++
			}
		}
		switch f.Kind {
		case core.CFile:
			if f.NeededBeyondHost {
				s.BeyondHostC++
				if res.IsJanitor {
					s.JanitorBeyondHostC++
				}
			} else {
				s.HostSufficedC++
			}
		case core.HFile:
			if f.NeededBeyondHost {
				s.BeyondHostH++
			} else {
				s.HostSufficedH++
			}
		}
	})
	return s
}

// Render prints the architecture statistics.
func (s ArchStats) Render() string {
	var b strings.Builder
	totC := s.HostSufficedC + s.BeyondHostC
	fmt.Fprintf(&b, ".c file instances served by x86_64 alone: %d/%d (%.0f%%)\n",
		s.HostSufficedC, totC, pctf(s.HostSufficedC, totC))
	totH := s.HostSufficedH + s.BeyondHostH
	fmt.Fprintf(&b, ".h file instances served by x86_64 alone: %d/%d (%.0f%%)\n",
		s.HostSufficedH, totH, pctf(s.HostSufficedH, totH))
	fmt.Fprintf(&b, ".c file instances needing another architecture: %d\n", s.BeyondHostC)
	fmt.Fprintf(&b, ".h file instances needing another architecture: %d\n", s.BeyondHostH)
	fmt.Fprintf(&b, "janitor .c instances needing another architecture: %d\n", s.JanitorBeyondHostC)
	type kv struct {
		k string
		v int
	}
	var arches []kv
	for a, n := range s.PerArch {
		arches = append(arches, kv{a, n})
	}
	sort.Slice(arches, func(i, j int) bool {
		if arches[i].v != arches[j].v {
			return arches[i].v > arches[j].v
		}
		return arches[i].k < arches[j].k
	})
	b.WriteString("architecture usefulness (file instances):\n")
	for _, a := range arches {
		fmt.Fprintf(&b, "  %-12s %d\n", a.k, a.v)
	}
	var jar []string
	for a := range s.JanitorArches {
		jar = append(jar, a)
	}
	sort.Strings(jar)
	fmt.Fprintf(&b, "extra architectures used by janitor patches: %s\n", strings.Join(jar, ", "))
	return b.String()
}

func pctf(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// ConfigStats compares allyesconfig-only coverage with configs/ defconfigs
// included (§V-B: 9158 vs 9259 patches).
type ConfigStats struct {
	CertifiedAllyesOnly int
	CertifiedWithConfig int
	TotalPatches        int
}

// ComputeConfigStats reproduces the configuration comparison.
func (r *Run) ComputeConfigStats() ConfigStats {
	var s ConfigStats
	r.forEachPatch(false, func(res PatchResult) {
		s.TotalPatches++
		if !res.Report.Certified() {
			return
		}
		s.CertifiedWithConfig++
		usedDef := false
		for _, f := range res.Report.Files {
			if f.UsedDefconfig {
				usedDef = true
			}
		}
		if !usedDef {
			s.CertifiedAllyesOnly++
		}
	})
	return s
}

// MutStats is the mutation-count distribution of §V-B.
type MutStats struct {
	// OneC/LeThreeC/TotalC for .c instances; same for .h.
	OneC, LeThreeC, TotalC, MaxC int
	OneH, LeThreeH, TotalH, MaxH int
}

// ComputeMutStats reproduces the "Properties of mutations" numbers.
func (r *Run) ComputeMutStats(janitorOnly bool) MutStats {
	var s MutStats
	r.forEachFile(janitorOnly, func(res PatchResult, f core.FileOutcome) {
		if f.Status == core.StatusSetupFile || f.Mutations == 0 {
			return
		}
		switch f.Kind {
		case core.CFile:
			s.TotalC++
			if f.Mutations == 1 {
				s.OneC++
			}
			if f.Mutations <= 3 {
				s.LeThreeC++
			}
			if f.Mutations > s.MaxC {
				s.MaxC = f.Mutations
			}
		case core.HFile:
			s.TotalH++
			if f.Mutations == 1 {
				s.OneH++
			}
			if f.Mutations <= 3 {
				s.LeThreeH++
			}
			if f.Mutations > s.MaxH {
				s.MaxH = f.Mutations
			}
		}
	})
	return s
}

// CStats reproduces "Benefits of mutations for .c files".
type CStats struct {
	// CleanFirst: all changed lines witnessed by the first successful
	// compilation.
	CleanFirst int
	// SilentEscapes: a compilation succeeded without error but some lines
	// were never subjected under allyesconfig (escapes + later recovered).
	SilentEscapes int
	// RecoveredByArch: of those, recovered by trying other architectures.
	RecoveredByArch int
	Total           int
}

// ComputeCStats aggregates .c file-instance outcomes.
func (r *Run) ComputeCStats(janitorOnly bool) CStats {
	var s CStats
	r.forEachFile(janitorOnly, func(res PatchResult, f core.FileOutcome) {
		if f.Kind != core.CFile || f.Status == core.StatusSetupFile {
			return
		}
		s.Total++
		switch {
		case f.Status == core.StatusCertified && len(f.UsedArches) == 1 && !f.UsedDefconfig:
			s.CleanFirst++
		case f.Status == core.StatusEscapes:
			s.SilentEscapes++
		case f.Status == core.StatusCertified && len(f.UsedArches) > 1:
			s.SilentEscapes++
			s.RecoveredByArch++
		}
	})
	return s
}

// HStats reproduces "Benefits of mutations for .h files".
type HStats struct {
	CoveredByPatchCs int
	NeededExtra      int
	RecoveredExtra   int
	NeverCovered     int
	MaxExtraCompiles int
	Total            int
}

// ComputeHStats aggregates .h file-instance outcomes.
func (r *Run) ComputeHStats(janitorOnly bool) HStats {
	var s HStats
	r.forEachFile(janitorOnly, func(res PatchResult, f core.FileOutcome) {
		if f.Kind != core.HFile || f.Status == core.StatusSetupFile ||
			f.Status == core.StatusCommentOnly {
			return
		}
		s.Total++
		switch {
		case f.CoveredByPatchCs && f.Status == core.StatusCertified:
			s.CoveredByPatchCs++
		case f.Status == core.StatusCertified:
			s.NeededExtra++
			s.RecoveredExtra++
		default:
			s.NeededExtra++
			s.NeverCovered++
		}
		if f.ExtraCCompiles > s.MaxExtraCompiles {
			s.MaxExtraCompiles = f.ExtraCCompiles
		}
	})
	return s
}

// Summary is the paper's headline result.
type Summary struct {
	CertifiedAll, TotalAll         int
	CertifiedJanitor, TotalJanitor int
	Untreatable                    int
	SingleInvocationPatches        int
}

// ComputeSummary reproduces the §V-B summary and the §V-D limitation
// count.
func (r *Run) ComputeSummary() Summary {
	var s Summary
	r.forEachPatch(false, func(res PatchResult) {
		s.TotalAll++
		cert := res.Report.Certified()
		if cert {
			s.CertifiedAll++
		}
		if res.Report.Untreatable {
			s.Untreatable++
		}
		if len(res.Report.MakeIDurations) == 1 {
			s.SingleInvocationPatches++
		}
		if res.IsJanitor {
			s.TotalJanitor++
			if cert {
				s.CertifiedJanitor++
			}
		}
	})
	return s
}

// Durations gathers the virtual-time samples behind Figures 4-6.
type Durations struct {
	Config, MakeI, MakeO []time.Duration
	// PatchTotal holds per-patch totals; JanitorTotal the janitor subset.
	PatchTotal, JanitorTotal []time.Duration
}

// ComputeDurations collects every operation duration.
func (r *Run) ComputeDurations() Durations {
	var d Durations
	r.forEachPatch(false, func(res PatchResult) {
		d.Config = append(d.Config, res.Report.ConfigDurations...)
		d.MakeI = append(d.MakeI, res.Report.MakeIDurations...)
		d.MakeO = append(d.MakeO, res.Report.MakeODurations...)
		d.PatchTotal = append(d.PatchTotal, res.Report.Total)
		if res.IsJanitor {
			d.JanitorTotal = append(d.JanitorTotal, res.Report.Total)
		}
	})
	return d
}

// Fig4a returns the CDF of configuration-creation times.
func (d Durations) Fig4a() *stats.CDF { return stats.NewDurationCDF(d.Config) }

// Fig4b returns the CDF of .i-generation times.
func (d Durations) Fig4b() *stats.CDF { return stats.NewDurationCDF(d.MakeI) }

// Fig4c returns the CDF of .o-generation times.
func (d Durations) Fig4c() *stats.CDF { return stats.NewDurationCDF(d.MakeO) }

// Fig5 returns the CDF of overall per-patch running times.
func (d Durations) Fig5() *stats.CDF { return stats.NewDurationCDF(d.PatchTotal) }

// Fig6 returns the janitor-only running-time CDF.
func (d Durations) Fig6() *stats.CDF { return stats.NewDurationCDF(d.JanitorTotal) }

// SkippedCount returns how many window commits the path filter dropped
// (the paper's 2,099).
func (r *Run) SkippedCount() int {
	n := 0
	for _, res := range r.Results {
		if res.Skipped {
			n++
		}
	}
	return n
}

// TableII renders the janitor study.
func (r *Run) TableII() string {
	tb := stats.NewTable("janitor", "patches", "subsystems", "lists", "maintainer", "file cv")
	for _, j := range r.Janitors {
		tb.AddRow(j.Name,
			fmt.Sprintf("%d", j.Patches),
			fmt.Sprintf("%d", j.Subsystems),
			fmt.Sprintf("%d", j.Lists),
			fmt.Sprintf("%.0f%%", 100*j.MaintainerFrac),
			fmt.Sprintf("%.2f", j.FileCV))
	}
	return tb.String()
}

// FaultStats aggregates the resilience layer's behavior across an
// evaluation run: retries paid, faults injected, budget exhaustions and
// circuit-breaker quarantines.
type FaultStats struct {
	// Retries is the total number of transient-failure retries.
	Retries int
	// InjectedFaults is the total number of injected fault events.
	InjectedFaults int
	// EventsByKind counts injected faults per kind name.
	EventsByKind map[string]int
	// BudgetExhaustedPatches counts patches whose virtual-time budget ran
	// out; BudgetExhaustedFiles the files finalized as budget-exhausted.
	BudgetExhaustedPatches int
	BudgetExhaustedFiles   int
	// QuarantinedArchPatches counts patches where the circuit breaker
	// quarantined at least one architecture.
	QuarantinedArchPatches int
	// BackoffTotal is the virtual time spent waiting out retries.
	BackoffTotal time.Duration
}

// ComputeFaultStats aggregates retry/fault counters from every patch.
func (r *Run) ComputeFaultStats() FaultStats {
	s := FaultStats{EventsByKind: make(map[string]int)}
	r.forEachPatch(false, func(res PatchResult) {
		s.Retries += res.Report.Retries
		s.InjectedFaults += len(res.Report.FaultEvents)
		for _, ev := range res.Report.FaultEvents {
			s.EventsByKind[ev.Kind.String()]++
		}
		if res.Report.BudgetExhausted {
			s.BudgetExhaustedPatches++
		}
		if len(res.Report.QuarantinedArches) > 0 {
			s.QuarantinedArchPatches++
		}
		for _, f := range res.Report.Files {
			if f.Status == core.StatusBudgetExhausted {
				s.BudgetExhaustedFiles++
			}
		}
		for _, d := range res.Report.BackoffDurations {
			s.BackoffTotal += d
		}
	})
	return s
}

// PresenceStats aggregates the static presence-condition pre-pass over the
// window: how much work the pruning saved and whether any prediction was
// ever contradicted by a .i witness (the cross-check of the tentpole; any
// disagreement is an analysis bug, not a property of the patch).
type PresenceStats struct {
	// StaticDeadFiles counts file outcomes finalized as static-dead;
	// StaticDeadLines the changed lines proven unreachable.
	StaticDeadFiles int
	StaticDeadLines int
	// SkippedMakeI / SkippedMakeO count the compiler invocations the
	// pruning made unnecessary.
	SkippedMakeI int
	SkippedMakeO int
	// Disagreements counts static/dynamic cross-check failures.
	Disagreements int
}

// ComputePresenceStats aggregates the static-analysis counters from every
// patch. All counters are zero unless the run enabled StaticPresence.
func (r *Run) ComputePresenceStats() PresenceStats {
	var s PresenceStats
	r.forEachPatch(false, func(res PatchResult) {
		s.SkippedMakeI += res.Report.StaticSkippedMakeI
		s.SkippedMakeO += res.Report.StaticSkippedMakeO
		s.Disagreements += len(res.Report.StaticDynamicDisagreements)
		for _, f := range res.Report.Files {
			if f.Status == core.StatusStaticDead {
				s.StaticDeadFiles++
			}
			s.StaticDeadLines += len(f.StaticDeadLines)
		}
	})
	return s
}

// Render formats the presence-analysis statistics.
func (s PresenceStats) Render() string {
	return fmt.Sprintf(
		"static-dead files: %d (lines: %d); compiles skipped: %d make.i, %d make.o; disagreements: %d\n",
		s.StaticDeadFiles, s.StaticDeadLines, s.SkippedMakeI, s.SkippedMakeO, s.Disagreements)
}

// Render formats the fault statistics.
func (s FaultStats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "injected faults: %d; retries: %d; backoff total: %v\n",
		s.InjectedFaults, s.Retries, s.BackoffTotal.Round(time.Millisecond))
	if len(s.EventsByKind) > 0 {
		kinds := make([]string, 0, len(s.EventsByKind))
		for k := range s.EventsByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(&b, "  %-12s %d\n", k, s.EventsByKind[k])
		}
	}
	fmt.Fprintf(&b, "budget-exhausted patches: %d (files: %d); patches with quarantined arches: %d\n",
		s.BudgetExhaustedPatches, s.BudgetExhaustedFiles, s.QuarantinedArchPatches)
	return b.String()
}
