package eval

import (
	"bytes"
	"testing"

	"jmake/internal/trace"
)

// traceBase mirrors the cache-invariance tests' parameters so the trace
// determinism suite exercises the same window.
func traceBase() Params {
	return Params{TreeSeed: 41, HistorySeed: 42, ModelSeed: 43,
		TreeScale: 0.15, CommitScale: 0.008, Trace: true}
}

// The tentpole's acceptance bar: the Chrome trace export is
// byte-identical at any worker count and under any result-cache state
// (off, in-memory, cold persistent, warm persistent) — the trace is a
// reproducible artifact like the JSON report, not a scheduling log.
func TestTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	dir := t.TempDir()

	run := func(name string, mutate func(*Params)) ([]byte, *Run) {
		p := traceBase()
		mutate(&p)
		r, err := Execute(p)
		if err != nil {
			t.Fatalf("Execute(%s): %v", name, err)
		}
		out := r.ChromeTrace()
		if len(out) == 0 {
			t.Fatalf("ChromeTrace(%s): empty", name)
		}
		if err := trace.ValidateChrome(out); err != nil {
			t.Fatalf("ValidateChrome(%s): %v", name, err)
		}
		return out, r
	}

	off, offRun := run("off", func(p *Params) { p.NoResultCache = true; p.Workers = 1 })
	inmem, _ := run("inmem", func(p *Params) { p.Workers = 2 })
	cold, _ := run("cold", func(p *Params) { p.CacheDir = dir; p.Workers = 4; p.InFlight = 8 })
	warm, _ := run("warm", func(p *Params) { p.CacheDir = dir; p.Workers = 8 })

	for name, out := range map[string][]byte{"inmem": inmem, "cold": cold, "warm": warm} {
		if !bytes.Equal(off, out) {
			t.Errorf("ChromeTrace(%s) differs from cache-off single-worker baseline", name)
		}
	}

	// Every make invocation the reports priced appears as exactly one
	// span, carrying arch, cache-outcome, and (for make.o) outcome
	// attributes.
	var wantConfig, wantMakeI, wantMakeO, wantBackoff int
	for _, res := range offRun.Results {
		if res.Report == nil {
			continue
		}
		wantConfig += len(res.Report.ConfigDurations)
		wantMakeI += len(res.Report.MakeIDurations)
		wantMakeO += len(res.Report.MakeODurations)
		wantBackoff += len(res.Report.BackoffDurations)
	}
	counts := make(map[string]int)
	for _, root := range offRun.Trace.Spans {
		root.Walk(func(s *trace.Span) {
			counts[s.Kind]++
			switch s.Kind {
			case trace.KindConfig:
				if _, ok := s.Attr("cache"); !ok {
					t.Fatalf("config span without cache outcome: %+v", s.Attrs)
				}
			case trace.KindMakeI, trace.KindMakeO:
				// Group spans inherit the outcome from their keyed children;
				// an invocation whose files were all unreachable has no probe
				// identity and correctly stays unstamped.
				keyed := false
				for _, c := range s.Children {
					if c.Key != 0 {
						keyed = true
					}
				}
				if _, ok := s.Attr("cache"); keyed && !ok {
					t.Fatalf("%s span with probe identity but no cache outcome: %+v", s.Kind, s.Attrs)
				}
			}
			switch s.Kind {
			case trace.KindMakeI, trace.KindMakeO, trace.KindArch, trace.KindConfig:
				if _, ok := s.Attr("arch"); !ok {
					t.Fatalf("%s span without arch: %+v", s.Kind, s.Attrs)
				}
			}
			if s.Kind == trace.KindMakeO {
				if _, ok := s.Attr("outcome"); !ok {
					t.Fatalf("make.o span without outcome: %+v", s.Attrs)
				}
			}
		})
	}
	if counts[trace.KindConfig] != wantConfig {
		t.Errorf("config spans = %d, want %d (one per ConfigDurations entry)", counts[trace.KindConfig], wantConfig)
	}
	if counts[trace.KindMakeI] != wantMakeI {
		t.Errorf("make.i spans = %d, want %d", counts[trace.KindMakeI], wantMakeI)
	}
	if counts[trace.KindMakeO] != wantMakeO {
		t.Errorf("make.o spans = %d, want %d", counts[trace.KindMakeO], wantMakeO)
	}
	if counts[trace.KindBackoff] != wantBackoff {
		t.Errorf("backoff spans = %d, want %d", counts[trace.KindBackoff], wantBackoff)
	}
	if counts[trace.KindMakeI] == 0 || counts[trace.KindMakeO] == 0 {
		t.Fatal("trace carries no compile spans — the test is vacuous")
	}

	// The stamped cache outcomes must include both classes (the window
	// recompiles shared configs and files across patches).
	var compute, reuse int
	for _, root := range offRun.Trace.Spans {
		root.Walk(func(s *trace.Span) {
			switch v, _ := s.Attr("cache"); v {
			case "compute":
				compute++
			case "reuse":
				reuse++
			}
		})
	}
	if compute == 0 || reuse == 0 {
		t.Errorf("cache outcomes not exercised: compute=%d reuse=%d", compute, reuse)
	}

	// The patch spans' virtual extents must equal the reports' totals —
	// each charged duration advanced the clock exactly once.
	i := 0
	for _, res := range offRun.Results {
		if res.Span == nil {
			continue
		}
		if res.Report == nil {
			t.Fatalf("span without report for %s", res.Commit)
		}
		if got := res.Span.Dur(); got != res.Report.Total {
			t.Fatalf("patch %s: span extent %v != report total %v", res.Commit, got, res.Report.Total)
		}
		i++
	}
	if i == 0 {
		t.Fatal("no patch spans recorded")
	}

	// Tree and summary renderings are deterministic too.
	if offRun.TraceTree() == "" || offRun.TraceSummary() == "" {
		t.Error("text exporters returned empty output")
	}
}

// A fault-injected run's trace must pin every retry to a backoff span and
// surface the injected faults as span attributes — and stay byte-identical
// across worker counts and cache states, because faults roll from the
// seeded per-commit plan before any cache interaction.
func TestTraceFaultSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	base := traceBase()
	base.Checker.Faults = faultPlanForTest()
	dir := t.TempDir()

	run := func(name string, mutate func(*Params)) ([]byte, *Run) {
		p := base
		mutate(&p)
		r, err := Execute(p)
		if err != nil {
			t.Fatalf("Execute(%s): %v", name, err)
		}
		out := r.ChromeTrace()
		if err := trace.ValidateChrome(out); err != nil {
			t.Fatalf("ValidateChrome(%s): %v", name, err)
		}
		return out, r
	}
	off, offRun := run("off", func(p *Params) { p.NoResultCache = true; p.Workers = 2 })
	cold, _ := run("cold", func(p *Params) { p.CacheDir = dir; p.Workers = 4 })
	warm, _ := run("warm", func(p *Params) { p.CacheDir = dir; p.Workers = 1 })
	if !bytes.Equal(off, cold) || !bytes.Equal(off, warm) {
		t.Error("fault-injected traces differ across cache states")
	}

	fs := offRun.ComputeFaultStats()
	if fs.InjectedFaults == 0 {
		t.Fatal("no faults injected — the test is vacuous")
	}
	var backoffSpans, faultAttrs, wantRetries int
	for _, res := range offRun.Results {
		if res.Report != nil {
			wantRetries += res.Report.Retries
		}
	}
	for _, root := range offRun.Trace.Spans {
		root.Walk(func(s *trace.Span) {
			if s.Kind == trace.KindBackoff {
				backoffSpans++
				if _, ok := s.Attr("attempt"); !ok {
					t.Fatalf("backoff span without attempt: %+v", s.Attrs)
				}
				if _, ok := s.Attr("op"); !ok {
					t.Fatalf("backoff span without op: %+v", s.Attrs)
				}
			}
			if _, ok := s.Attr("fault"); ok {
				faultAttrs++
			}
		})
	}
	if backoffSpans != wantRetries {
		t.Errorf("backoff spans = %d, want %d (one per recorded retry)", backoffSpans, wantRetries)
	}
	if backoffSpans == 0 {
		t.Fatal("seeded fault plan produced no retries — raise the rates")
	}
	if faultAttrs == 0 {
		t.Error("no span carries a fault attribute despite injected faults")
	}
}
