package eval

import (
	"context"
	"errors"
	"testing"
	"time"

	"jmake/internal/core"
)

// smallRun executes a reduced evaluation, shared across tests.
var cachedRun *Run

func smallRun(t *testing.T) *Run {
	t.Helper()
	if cachedRun != nil {
		return cachedRun
	}
	r, err := Execute(Params{
		TreeSeed:    31,
		HistorySeed: 32,
		ModelSeed:   33,
		TreeScale:   0.3,
		CommitScale: 0.04,
		Workers:     4,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	cachedRun = r
	return r
}

func TestExecuteProducesResults(t *testing.T) {
	r := smallRun(t)
	if len(r.Results) < 300 {
		t.Fatalf("results = %d, want several hundred at 4%% scale", len(r.Results))
	}
	var errs, processed int
	for _, res := range r.Results {
		if res.Err != nil {
			errs++
			t.Logf("patch error: %v", res.Err)
		}
		if res.Report != nil {
			processed++
		}
	}
	if errs > 0 {
		t.Errorf("%d patches errored", errs)
	}
	if processed == 0 {
		t.Fatal("no patches processed")
	}
	if r.SkippedCount() == 0 {
		t.Error("no patches skipped by path filter (expected ~16%)")
	}
}

func TestSummaryShape(t *testing.T) {
	r := smallRun(t)
	s := r.ComputeSummary()
	if s.TotalAll == 0 {
		t.Fatal("no patches in summary")
	}
	certFrac := float64(s.CertifiedAll) / float64(s.TotalAll)
	// Paper: 85%. The shape requirement: a clear majority certified, but
	// noticeably below 100%.
	if certFrac < 0.70 || certFrac > 0.97 {
		t.Errorf("certified fraction = %.2f, want within [0.70, 0.97]", certFrac)
	}
	if s.TotalJanitor == 0 {
		t.Error("no janitor patches")
	}
	jFrac := float64(s.CertifiedJanitor) / float64(s.TotalJanitor)
	if jFrac < certFrac-0.12 {
		t.Errorf("janitor certification (%.2f) should not trail overall (%.2f)", jFrac, certFrac)
	}
	if s.Untreatable == 0 {
		t.Error("no untreatable (setup-file) patches found")
	}
	t.Logf("summary: %+v (cert %.1f%%, janitor %.1f%%)", s, 100*certFrac, 100*jFrac)
}

func TestTableIIIShape(t *testing.T) {
	r := smallRun(t)
	tab := r.ComputeTableIII()
	if tab.All.Total == 0 {
		t.Fatal("empty Table III")
	}
	cFrac := float64(tab.All.COnly) / float64(tab.All.Total)
	bFrac := float64(tab.All.Both) / float64(tab.All.Total)
	// Paper: 70% / 5% / 23%.
	if cFrac < 0.55 || cFrac > 0.85 {
		t.Errorf(".c-only fraction = %.2f, want ~0.70", cFrac)
	}
	if bFrac < 0.10 || bFrac > 0.35 {
		t.Errorf("both fraction = %.2f, want ~0.23", bFrac)
	}
	// Janitors skew toward .c-only (87% vs 70% in the paper). At reduced
	// scale the relaxed identification admits some background authors, so
	// allow slack.
	jcFrac := float64(tab.Janitor.COnly) / float64(tab.Janitor.Total)
	if jcFrac < cFrac-0.10 {
		t.Errorf("janitor .c-only (%.2f) should not trail overall (%.2f)", jcFrac, cFrac)
	}
	t.Logf("Table III:\n%s", tab.Render())
}

func TestTableIVPopulated(t *testing.T) {
	r := smallRun(t)
	tabAll := r.ComputeTableIV(false)
	if tabAll.AffectedFiles == 0 {
		t.Fatal("no escape instances found")
	}
	if len(tabAll.Counts) < 3 {
		t.Errorf("only %d escape categories seen: %v", len(tabAll.Counts), tabAll.Counts)
	}
	if n := tabAll.Counts[core.EscapeOther]; n > tabAll.AffectedFiles/4 {
		t.Errorf("too many unclassified escapes: %d of %d", n, tabAll.AffectedFiles)
	}
	t.Logf("Table IV (all):\n%s", tabAll.Render())
}

func TestArchStatsShape(t *testing.T) {
	r := smallRun(t)
	s := r.ComputeArchStats()
	totC := s.HostSufficedC + s.BeyondHostC
	if totC == 0 {
		t.Fatal("no .c arch stats")
	}
	frac := float64(s.HostSufficedC) / float64(totC)
	// Paper: 96% served by x86_64.
	if frac < 0.85 {
		t.Errorf("host-sufficient fraction = %.2f, want >= 0.85", frac)
	}
	if s.BeyondHostC == 0 {
		t.Error("no cross-architecture instances")
	}
	if s.PerArch["x86_64"] == 0 {
		t.Error("host arch never used")
	}
	t.Logf("arch stats:\n%s", s.Render())
}

func TestMutStatsShape(t *testing.T) {
	r := smallRun(t)
	s := r.ComputeMutStats(false)
	if s.TotalC == 0 {
		t.Fatal("no .c mutation stats")
	}
	oneFrac := float64(s.OneC) / float64(s.TotalC)
	leThreeFrac := float64(s.LeThreeC) / float64(s.TotalC)
	// Paper: 82% one mutation, 95% <= 3.
	if oneFrac < 0.6 {
		t.Errorf("single-mutation fraction = %.2f, want >= 0.6", oneFrac)
	}
	if leThreeFrac < 0.85 {
		t.Errorf("<=3 mutation fraction = %.2f, want >= 0.85", leThreeFrac)
	}
	// The many-macro outlier (paper: >200 mutations).
	if s.MaxC < 100 {
		t.Errorf("max .c mutations = %d, want the 200+ outlier", s.MaxC)
	}
}

func TestHStatsShape(t *testing.T) {
	r := smallRun(t)
	s := r.ComputeHStats(false)
	if s.Total == 0 {
		t.Fatal("no .h stats")
	}
	covFrac := float64(s.CoveredByPatchCs) / float64(s.Total)
	// Paper: 66% covered by the patch's own .c files.
	if covFrac < 0.4 {
		t.Errorf("covered-by-own-.c fraction = %.2f, want >= 0.4", covFrac)
	}
	if s.RecoveredExtra == 0 {
		t.Error("no headers recovered via extra compiles")
	}
	if s.NeverCovered == 0 {
		t.Error("no never-covered headers (paper: 2%)")
	}
	t.Logf("h stats: %+v", s)
}

func TestDurationsShape(t *testing.T) {
	r := smallRun(t)
	d := r.ComputeDurations()
	if len(d.Config) == 0 || len(d.MakeI) == 0 || len(d.MakeO) == 0 {
		t.Fatal("missing duration samples")
	}
	// Fig 4a: all config creations <= 5s.
	if max := d.Fig4a().Max(); max > 5 {
		t.Errorf("config creation max = %.1fs, want <= 5s", max)
	}
	// Fig 5: the overall CDF covers tens of seconds; most patches finish
	// within a minute, as in the paper (95% <= 60s).
	f5 := d.Fig5()
	if frac := f5.FractionAtOrBelow(60); frac < 0.80 {
		t.Errorf("patches <= 60s = %.2f, want >= 0.80", frac)
	}
	// The prom_init outlier produces a >1000s tail.
	if f5.Max() < 500 {
		t.Errorf("max patch time = %.0fs, want the whole-kernel outlier", f5.Max())
	}
	// Fig 6: the janitor tail never exceeds the overall tail (paper: 1080s
	// vs >6000s; at reduced scale the identified set can include the
	// whole-kernel outlier's author, so equality is tolerated).
	f6 := d.Fig6()
	if f6.Len() == 0 {
		t.Fatal("no janitor durations")
	}
	if f6.Max() > f5.Max() {
		t.Errorf("janitor max (%.0fs) must not exceed overall max (%.0fs)", f6.Max(), f5.Max())
	}
	if testing.Verbose() {
		t.Logf("Fig5 p50=%.1fs p82=%.1fs p95=%.1fs max=%.1fs",
			f5.Percentile(0.5), f5.Percentile(0.82), f5.Percentile(0.95), f5.Max())
	}
}

func TestConfigStatsShape(t *testing.T) {
	r := smallRun(t)
	s := r.ComputeConfigStats()
	if s.CertifiedWithConfig < s.CertifiedAllyesOnly {
		t.Errorf("configs coverage (%d) must be >= allyes-only (%d)",
			s.CertifiedWithConfig, s.CertifiedAllyesOnly)
	}
	if s.CertifiedWithConfig == s.CertifiedAllyesOnly {
		t.Error("defconfigs never helped (paper: +101 patches)")
	}
	t.Logf("config stats: %+v", s)
}

func TestRelevantPath(t *testing.T) {
	tests := []struct {
		p    string
		want bool
	}{
		{"drivers/net/a.c", true},
		{"include/linux/a.h", true},
		{"Documentation/net/a.txt", false},
		{"scripts/checks/x.sh", false},
		{"tools/testing/a.c", false},
		{"drivers/net/Makefile", false},
		{"drivers/net/Kconfig", false},
	}
	for _, tt := range tests {
		if got := RelevantPath(tt.p); got != tt.want {
			t.Errorf("RelevantPath(%q) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := Params{TreeSeed: 41, HistorySeed: 42, ModelSeed: 43, TreeScale: 0.15, CommitScale: 0.008, Workers: 3}
	r1, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Results) != len(r2.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(r1.Results), len(r2.Results))
	}
	var t1, t2 time.Duration
	for i := range r1.Results {
		if r1.Results[i].Report != nil {
			t1 += r1.Results[i].Report.Total
		}
		if r2.Results[i].Report != nil {
			t2 += r2.Results[i].Report.Total
		}
	}
	if t1 != t2 {
		t.Errorf("total virtual times differ: %v vs %v", t1, t2)
	}
}

// TestWindowCancellation cancels the patch window from inside the first
// checker poll and asserts the partial-run contract: the un-dispatched
// tail is stamped with the context error (never silently zero), in-flight
// patches stop with honestly-labeled reports, and no canceled run ever
// certifies a file with unwitnessed mutations.
func TestWindowCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := Params{TreeSeed: 41, HistorySeed: 42, ModelSeed: 43,
		TreeScale: 0.15, CommitScale: 0.008, Workers: 2, Ctx: ctx}
	p.Checker.Interrupt = func() bool { cancel(); return true }
	r, err := Execute(p)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if r.Pipeline.Canceled == 0 {
		t.Fatal("cancellation mid-window left Pipeline.Canceled == 0")
	}
	for _, res := range r.Results {
		if res.Err != nil && !errors.Is(res.Err, context.Canceled) {
			t.Errorf("%s: unexpected error %v", res.Commit, res.Err)
		}
		if res.Report == nil {
			continue
		}
		for _, f := range res.Report.Files {
			if f.Status == core.StatusCertified && f.FoundMutations != f.Mutations {
				t.Errorf("%s: %s certified with %d/%d mutations on a canceled run",
					res.Commit, f.Path, f.FoundMutations, f.Mutations)
			}
		}
	}
	for i := len(r.Results) - r.Pipeline.Canceled; i < len(r.Results); i++ {
		res := r.Results[i]
		if res.Commit == "" || !errors.Is(res.Err, context.Canceled) {
			t.Errorf("canceled tail entry %d not stamped: %+v", i, res)
		}
	}
}
