package eval

import (
	"fmt"
	"testing"
)

// BenchmarkCheckWindow measures patch-window throughput at several worker
// counts (run with `make bench-workers`). The substrate (tree, history,
// janitor study) is prepared once outside the timer; every measured pass
// runs the full window through a FRESH Session so cache warmth cannot
// favor later worker counts. Speedup tracks available cores — on a
// single-core machine the worker counts tie, which is itself evidence the
// pool adds no contention overhead.
// BenchmarkStaticPruning compares the window's virtual build time with and
// without the static presence-condition pre-pass. Wall clock measures the
// analysis overhead; the reported virtual_seconds metric is what the paper
// cares about — compiler invocations a kernel janitor would actually wait
// for, which the pruning removes whenever a patch only touches dead
// regions.
func BenchmarkStaticPruning(b *testing.B) {
	run, ids, err := prepare(Params{
		TreeSeed: 51, HistorySeed: 52, ModelSeed: 53,
		TreeScale: 0.25, CommitScale: 0.02,
	})
	if err != nil {
		b.Fatalf("prepare: %v", err)
	}
	for _, pruned := range []bool{false, true} {
		name := "unpruned"
		if pruned {
			name = "pruned"
		}
		b.Run(name, func(b *testing.B) {
			var last PipelineMetrics
			for i := 0; i < b.N; i++ {
				shell := *run
				shell.Params.Checker.StaticPresence = pruned
				if err := shell.checkWindow(ids); err != nil {
					b.Fatalf("checkWindow: %v", err)
				}
				last = shell.Pipeline
			}
			b.ReportMetric(last.Stages.TotalSeconds, "virtual_sec")
			b.ReportMetric(float64(last.StaticSkippedMakeI+last.StaticSkippedMakeO), "skipped")
			b.ReportMetric(float64(last.Checked), "checked")
		})
	}
}

func BenchmarkCheckWindow(b *testing.B) {
	run, ids, err := prepare(Params{
		TreeSeed: 51, HistorySeed: 52, ModelSeed: 53,
		TreeScale: 0.25, CommitScale: 0.02,
	})
	if err != nil {
		b.Fatalf("prepare: %v", err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var last PipelineMetrics
			for i := 0; i < b.N; i++ {
				shell := *run
				shell.Params.Workers = w
				if err := shell.checkWindow(ids); err != nil {
					b.Fatalf("checkWindow: %v", err)
				}
				last = shell.Pipeline
			}
			b.ReportMetric(last.PatchesPerSec, "patches/sec")
			b.ReportMetric(float64(last.Checked), "checked")
		})
	}
}
