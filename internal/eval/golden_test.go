package eval

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The registry refactor's byte-compat bar: the default JSON report for
// the documented seed run must match the output pinned before the
// scattered ad-hoc counters moved into the metrics registry. Regenerate
// (after an intentional report change) with UPDATE_GOLDEN=1.
func TestJSONMatchesSeedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	p := Params{TreeSeed: 1, HistorySeed: 2, ModelSeed: 3,
		TreeScale: 0.15, CommitScale: 0.008, Workers: 4}
	r, err := Execute(p)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	got, err := r.JSON(false)
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	got = append(got, '\n') // the golden was captured from the CLI, which ends with a newline

	path := filepath.Join("testdata", "golden_seed.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("JSON report drifted from the pre-refactor seed golden (len %d vs %d).\n"+
			"If the change is intentional, regenerate with UPDATE_GOLDEN=1.", len(got), len(want))
	}
}
