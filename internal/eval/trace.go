package eval

// traceLanes fixes the Chrome export's virtual-lane count. Lanes are a
// rendering device (a deterministic earliest-free-lane layout of the
// per-patch span trees), NOT the host worker pool: pinning the count
// keeps the exported bytes identical at any -workers setting.
const traceLanes = 4

// ChromeTrace renders the merged session trace in Chrome trace-event
// JSON (load it in Perfetto or chrome://tracing). Returns nil when the
// run was not traced. The bytes are a reproducible artifact: identical
// for same-seed runs at any worker count and any result-cache state.
func (r *Run) ChromeTrace() []byte {
	if r.Trace == nil {
		return nil
	}
	return r.Trace.Chrome(traceLanes)
}

// TraceTree renders the merged trace as an indented plain-text span
// tree. Empty when the run was not traced.
func (r *Run) TraceTree() string {
	if r.Trace == nil {
		return ""
	}
	return r.Trace.Tree()
}

// TraceSummary renders the per-stage / per-arch span summary table.
// Empty when the run was not traced.
func (r *Run) TraceSummary() string {
	if r.Trace == nil {
		return ""
	}
	return r.Trace.RenderSummary()
}
