package eval

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"jmake/internal/faultinject"
)

// faultPlanForTest injects enough transient faults to exercise the
// fault-vs-cache ordering without drowning the run in retries.
func faultPlanForTest() faultinject.Plan {
	return faultinject.Plan{Seed: 9, PreprocessRate: 0.05, TruncateRate: 0.05}
}

// The tentpole's correctness crux: the default JSON report must be
// byte-identical with the result cache off, cold, and warm (persistent
// tier), at any worker count. Caching may only change real compute.
func TestJSONCacheStateInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	base := Params{TreeSeed: 41, HistorySeed: 42, ModelSeed: 43, TreeScale: 0.15, CommitScale: 0.008}
	dir := t.TempDir()

	run := func(name string, mutate func(*Params)) ([]byte, *Run) {
		p := base
		mutate(&p)
		r, err := Execute(p)
		if err != nil {
			t.Fatalf("Execute(%s): %v", name, err)
		}
		js, err := r.JSON(true)
		if err != nil {
			t.Fatalf("JSON(%s): %v", name, err)
		}
		return js, r
	}

	off, _ := run("off", func(p *Params) { p.NoResultCache = true; p.Workers = 1 })
	inmem, _ := run("inmem", func(p *Params) { p.Workers = 2 })
	cold, coldRun := run("cold", func(p *Params) { p.CacheDir = dir; p.Workers = 4; p.InFlight = 8 })
	warm, warmRun := run("warm", func(p *Params) { p.CacheDir = dir; p.Workers = 8 })
	warm1, _ := run("warm1", func(p *Params) { p.CacheDir = dir; p.Workers = 1 })

	for name, js := range map[string][]byte{"inmem": inmem, "cold": cold, "warm": warm, "warm1": warm1} {
		if !bytes.Equal(off, js) {
			t.Errorf("JSON(%s) differs from cache-off baseline", name)
		}
	}

	// The cache must really have persisted and warm-started.
	if _, err := os.Stat(filepath.Join(dir, "jmake-ccache.json")); err != nil {
		t.Fatalf("persistent tier not written: %v", err)
	}
	if coldRun.Pipeline.ResultCache.LoadedEntries != 0 {
		t.Errorf("cold run loaded %d entries", coldRun.Pipeline.ResultCache.LoadedEntries)
	}
	wrc := warmRun.Pipeline.ResultCache
	if wrc.LoadedEntries == 0 {
		t.Fatal("warm run loaded nothing from the persistent tier")
	}
	if wrc.MakeI.Hits == 0 || wrc.MakeO.Hits == 0 {
		t.Fatalf("warm run produced no hits: %+v", wrc)
	}
	// The whole point: a warm start saves a large fraction of the
	// effective virtual time (the acceptance bar is 30%).
	coldEff := coldRun.Pipeline.EffectiveSeconds()
	warmEff := warmRun.Pipeline.EffectiveSeconds()
	if coldEff <= 0 || warmEff >= 0.7*coldEff {
		t.Errorf("warm effective %.1fs vs cold %.1fs: want >=30%% savings", warmEff, coldEff)
	}
}

// Fault injection and result caching must compose: faults are rolled
// before any probe and never stored, so a faulty run's report (including
// the fault/retry bookkeeping) is identical at every cache state.
func TestJSONCacheInvariantUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	base := Params{TreeSeed: 41, HistorySeed: 42, ModelSeed: 43, TreeScale: 0.15, CommitScale: 0.008}
	base.Checker.Faults = faultPlanForTest()
	dir := t.TempDir()

	run := func(name string, mutate func(*Params)) []byte {
		p := base
		mutate(&p)
		r, err := Execute(p)
		if err != nil {
			t.Fatalf("Execute(%s): %v", name, err)
		}
		if r.ComputeFaultStats().InjectedFaults == 0 {
			t.Fatalf("%s: no faults injected — the test is vacuous", name)
		}
		js, err := r.JSON(false)
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	off := run("off", func(p *Params) { p.NoResultCache = true; p.Workers = 2 })
	cold := run("cold", func(p *Params) { p.CacheDir = dir; p.Workers = 4 })
	warm := run("warm", func(p *Params) { p.CacheDir = dir; p.Workers = 2 })
	if !bytes.Equal(off, cold) || !bytes.Equal(off, warm) {
		t.Error("fault-injected reports differ across cache states")
	}
}

// A corrupted persistent tier must degrade to a cold start with identical
// output, never an error.
func TestCorruptPersistentTierIsCold(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	base := Params{TreeSeed: 41, HistorySeed: 42, ModelSeed: 43, TreeScale: 0.15, CommitScale: 0.008, Workers: 2}

	p := base
	p.CacheDir = t.TempDir()
	r1, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	js1, err := r1.JSON(false)
	if err != nil {
		t.Fatal(err)
	}
	// Trash the cache file in place.
	path := filepath.Join(p.CacheDir, "jmake-ccache.json")
	if err := os.WriteFile(path, []byte("\x00garbage\xff"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(p)
	if err != nil {
		t.Fatalf("corrupt cache must not fail the run: %v", err)
	}
	js2, err := r2.JSON(false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Error("corrupt cache changed the report")
	}
	if r2.Pipeline.ResultCache.LoadedEntries != 0 {
		t.Errorf("corrupt cache loaded %d entries", r2.Pipeline.ResultCache.LoadedEntries)
	}
	// And the run rewrote a valid cache file behind itself.
	r3, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Pipeline.ResultCache.LoadedEntries == 0 {
		t.Error("cache file not rewritten after corruption")
	}
}
