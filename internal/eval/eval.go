// Package eval orchestrates the paper's §V evaluation: generate the
// kernel-shaped tree and its commit history, identify the janitors, run
// JMake over every patch between v4.3 and v4.4 with a worker pool, and
// aggregate the results into each of the paper's tables and figures.
package eval

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"jmake/internal/ccache"
	"jmake/internal/commitgen"
	"jmake/internal/core"
	"jmake/internal/fstree"
	"jmake/internal/janitor"
	"jmake/internal/kernelgen"
	"jmake/internal/maintainers"
	"jmake/internal/sched"
	"jmake/internal/trace"
	"jmake/internal/vclock"
	"jmake/internal/vcs"
)

// Params configure a full evaluation run.
type Params struct {
	// Ctx, when non-nil, cancels the patch window: commits not yet handed
	// to a worker when Ctx is done are never checked (their results carry
	// Ctx's error), and in-flight checkers stop at the next stage boundary
	// with canceled partial reports. nil means run to completion — the
	// deterministic default; canceled runs are inherently partial and must
	// not feed reproducible reports.
	Ctx context.Context
	// TreeSeed / HistorySeed / ModelSeed drive the three deterministic
	// generators.
	TreeSeed    int64
	HistorySeed int64
	ModelSeed   uint64
	// TreeScale sizes the kernel tree (1.6 ≈ 1700 drivers' worth of files,
	// enough for the janitor file-spread of Table II).
	TreeScale float64
	// CommitScale sizes the history (1.0 = the paper's 12,946 window
	// commits).
	CommitScale float64
	// Workers bounds parallel patch processing (paper: 25 processes).
	Workers int
	// InFlight bounds admitted-but-unmerged patches (each holds one tree
	// clone and report in memory); 0 means 2*Workers.
	InFlight int
	// Checker tunes the JMake pipeline.
	Checker core.Options
	// NoResultCache disables the shared compile-result cache (on by
	// default; see internal/ccache). Verdicts and the default JSON report
	// are byte-identical either way — the cache only changes real compute.
	NoResultCache bool
	// CacheDir enables the persistent result-cache tier: warm-start from
	// this directory before the window, persist back after it.
	CacheDir string
	// CacheMaxBytes bounds the persisted cache payload (0 = 64 MiB).
	CacheMaxBytes int64
	// Trace records a virtual-time span tree for every checked patch (see
	// internal/trace). The merged trace is a reproducible artifact —
	// byte-identical at any Workers count and under any cache state — so
	// turning it on never perturbs the run it observes.
	Trace bool
	// JanitorThresholds for the §IV study; zero value uses scaled paper
	// thresholds.
	JanitorThresholds janitor.Thresholds
}

func (p Params) withDefaults() Params {
	if p.TreeScale <= 0 {
		p.TreeScale = 1.6
	}
	if p.CommitScale <= 0 {
		p.CommitScale = 1.0
	}
	if p.Workers <= 0 {
		p.Workers = runtime.NumCPU()
		if p.Workers > 25 {
			p.Workers = 25 // the paper's process count
		}
	}
	if p.JanitorThresholds == (janitor.Thresholds{}) {
		th := janitor.DefaultThresholds()
		// Thresholds scale with history volume so the study discriminates
		// at reduced scales too.
		th.MinPatches = scaleMin(th.MinPatches, p.CommitScale, 3)
		th.MinSubsystems = scaleMin(th.MinSubsystems, p.CommitScale, 4)
		th.MinLists = scaleMin(th.MinLists, p.CommitScale, 2)
		th.MinWindowPatches = scaleMin(th.MinWindowPatches, p.CommitScale, 2)
		p.JanitorThresholds = th
	}
	return p
}

func scaleMin(n int, scale float64, min int) int {
	v := int(float64(n)*scale + 0.5)
	if v < min {
		v = min
	}
	return v
}

// PatchResult is the outcome for one window commit.
type PatchResult struct {
	Commit    string
	Author    string
	IsJanitor bool
	// Skipped marks commits filtered by path rules (Documentation/,
	// scripts/, tools/, or no .c/.h files) — the paper's 2,099.
	Skipped bool
	Report  *core.PatchReport
	Err     error
	// Span is the patch's trace tree (nil unless Params.Trace).
	Span *trace.Span
}

// Run is a completed evaluation.
type Run struct {
	Params   Params
	Tree     *fstree.Tree
	Manifest *kernelgen.Manifest
	Repo     *vcs.Repo
	// Janitors is the §IV study output; JanitorEmails keys patch
	// attribution.
	Janitors      []janitor.AuthorStats
	JanitorEmails map[string]bool
	// Results has one entry per window commit (12,946 at scale 1.0).
	Results []PatchResult
	// Pipeline describes the worker pool's execution of the window.
	Pipeline PipelineMetrics
	// Trace is the merged session trace (nil unless Params.Trace): one
	// span tree per checked patch, in submission order, cache outcomes
	// stamped.
	Trace *trace.Trace
}

// Execute runs the complete evaluation: substrate generation and janitor
// study (prepare), then the parallel patch window (checkWindow).
func Execute(p Params) (*Run, error) {
	run, ids, err := prepare(p)
	if err != nil {
		return nil, err
	}
	if err := run.checkWindow(ids); err != nil {
		return nil, err
	}
	return run, nil
}

// prepare generates the evaluation substrate — the kernel-shaped tree, its
// commit history, the §IV janitor study — and returns the run shell plus
// the §V-A window patch stream.
func prepare(p Params) (*Run, []string, error) {
	p = p.withDefaults()
	tree, man, err := kernelgen.Generate(kernelgen.Params{Seed: p.TreeSeed, Scale: p.TreeScale})
	if err != nil {
		return nil, nil, fmt.Errorf("eval: generating tree: %w", err)
	}
	hist, err := commitgen.Build(tree, man, commitgen.Params{Seed: p.HistorySeed, Scale: p.CommitScale})
	if err != nil {
		return nil, nil, fmt.Errorf("eval: generating history: %w", err)
	}
	repo := hist.Repo

	// §IV: identify janitors over the whole study period.
	mtext, err := repo.ReadTip("MAINTAINERS")
	if err != nil {
		return nil, nil, fmt.Errorf("eval: %w", err)
	}
	entries, err := maintainers.Parse(mtext)
	if err != nil {
		return nil, nil, fmt.Errorf("eval: %w", err)
	}
	js, err := janitor.IdentifyWorkers(repo, maintainers.NewIndex(entries),
		"v3.0", "v4.3", "v4.4", p.JanitorThresholds, p.Workers)
	if err != nil {
		return nil, nil, fmt.Errorf("eval: %w", err)
	}
	jEmails := janitor.Emails(js)
	// The planted roster is the ground truth for patch attribution even if
	// the scaled study misses some members.
	for _, spec := range hist.Janitors {
		jEmails[spec.Email] = true
	}

	// §V-A: the patch stream.
	ids, err := repo.Between("v4.3", "v4.4", vcs.LogOptions{NoMerges: true, OnlyModify: true})
	if err != nil {
		return nil, nil, fmt.Errorf("eval: %w", err)
	}
	return &Run{
		Params:        p,
		Tree:          tree,
		Manifest:      man,
		Repo:          repo,
		Janitors:      js,
		JanitorEmails: jEmails,
	}, ids, nil
}

// checkWindow fans the window's patches over the worker pool. One Session
// holds the window-invariant state (build metadata, arch index, Kconfig
// valuations, lexed tokens); each patch gets its own Checker so resilience
// state stays patch-local and reports are identical at any worker count.
// Results are merged in submission order with bounded in-flight memory.
func (r *Run) checkWindow(ids []string) error {
	if len(ids) == 0 {
		return fmt.Errorf("eval: empty patch window")
	}
	base, err := r.Repo.CheckoutTree(ids[0])
	if err != nil {
		return fmt.Errorf("eval: %w", err)
	}
	session, err := core.NewSession(base)
	if err != nil {
		return fmt.Errorf("eval: %w", err)
	}
	if r.Params.NoResultCache {
		session.SetResultCache(nil)
	} else if r.Params.CacheDir != "" {
		rc := ccache.New()
		rc.Load(r.Params.CacheDir) // best-effort warm start; corrupt = cold
		session.SetResultCache(rc)
	}
	model := vclock.DefaultModel(r.Params.ModelSeed)
	ctx := r.Params.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	opts := r.Params.Checker
	if r.Params.Ctx != nil && opts.Interrupt == nil {
		// Stop in-flight checkers at their next stage boundary once the
		// window is canceled, instead of letting them run to completion.
		opts.Interrupt = func() bool { return ctx.Err() != nil }
	}

	r.Results = make([]PatchResult, len(ids))
	met := sched.MapCtx(ctx, len(ids),
		sched.Options{Workers: r.Params.Workers, InFlight: r.Params.InFlight},
		func(i int) PatchResult {
			return processOne(r.Repo, session, model, opts, ids[i], r.JanitorEmails, r.Params.Trace)
		},
		func(i int, res PatchResult) {
			r.Results[i] = res
		})
	// Canceled items are exactly the un-dispatched tail; stamp them so a
	// partial run is distinguishable from one whose commits all failed.
	for i := len(ids) - met.Canceled; i < len(ids); i++ {
		r.Results[i] = PatchResult{Commit: ids[i], Err: ctx.Err()}
	}
	r.Pipeline = computePipelineMetrics(met, r.Results, session)
	if r.Params.Trace {
		// r.Results is indexed by submission order, so the merged trace is
		// identical at any worker count; Stamp then classifies cache
		// outcomes from content keys in that same canonical order.
		tr := &trace.Trace{}
		for i := range r.Results {
			if s := r.Results[i].Span; s != nil {
				tr.Spans = append(tr.Spans, s)
			}
		}
		tr.Stamp()
		r.Trace = tr
	}
	if !r.Params.NoResultCache && r.Params.CacheDir != "" {
		if err := session.ResultCache().Save(r.Params.CacheDir, r.Params.CacheMaxBytes); err != nil {
			return fmt.Errorf("eval: persisting result cache: %w", err)
		}
	}
	return nil
}

// processOne checks a single commit, mirroring the paper's per-patch
// pipeline: clean checkout, path filtering, then JMake.
func processOne(repo *vcs.Repo, session *core.Session, model *vclock.Model, opts core.Options, id string, jEmails map[string]bool, traced bool) PatchResult {
	res := PatchResult{Commit: id}
	c, err := repo.Get(id)
	if err != nil {
		res.Err = err
		return res
	}
	res.Author = c.Author.Email
	res.IsJanitor = jEmails[c.Author.Email]

	fds, err := repo.FileDiffs(id)
	if err != nil {
		res.Err = err
		return res
	}
	kept := fds[:0:0]
	for _, fd := range fds {
		if !RelevantPath(fd.NewPath) {
			continue
		}
		kept = append(kept, fd)
	}
	if len(kept) == 0 {
		res.Skipped = true
		return res
	}

	tree, err := repo.CheckoutTree(id)
	if err != nil {
		res.Err = err
		return res
	}
	checker := session.Checker(tree, model, opts)
	var rec *trace.Recorder
	if traced {
		// Each patch gets its own virtual clock starting at zero, so the
		// span tree depends only on the patch's own deterministic charges.
		rec = trace.NewRecorder(trace.KindPatch, model.NewClock(), trace.A("commit", id))
		checker.SetTrace(rec)
	}
	report, err := checker.CheckPatch(id, kept)
	if err != nil {
		res.Err = err
		return res
	}
	res.Report = report
	res.Span = rec.Finish()
	return res
}

// RelevantPath implements the paper's path filter: only .c and .h files
// outside Documentation, scripts and tools are considered (§V-A).
func RelevantPath(p string) bool {
	if strings.HasPrefix(p, "Documentation/") ||
		strings.HasPrefix(p, "scripts/") ||
		strings.HasPrefix(p, "tools/") {
		return false
	}
	return strings.HasSuffix(p, ".c") || strings.HasSuffix(p, ".h")
}
