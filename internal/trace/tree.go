package trace

import (
	"bytes"
	"fmt"
	"time"
)

// Tree renders the trace as an indented plain-text span tree, one line
// per span: virtual start, duration, kind, and attributes in recorded
// order. The format is stable — a golden test pins it — so structural
// regressions (missing stage, wrong parent) show up as diffs.
func (t *Trace) Tree() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "session: %d patch spans (virtual time)\n", len(t.Spans))
	for _, s := range t.Spans {
		writeTree(&buf, s, 1)
	}
	return buf.String()
}

func writeTree(buf *bytes.Buffer, s *Span, depth int) {
	for i := 0; i < depth; i++ {
		buf.WriteString("  ")
	}
	fmt.Fprintf(buf, "%s @%s +%s", s.Kind, fmtDur(s.Start), fmtDur(s.Dur()))
	for _, a := range s.Attrs {
		fmt.Fprintf(buf, " %s=%s", a.Key, a.Value)
	}
	buf.WriteByte('\n')
	for _, c := range s.Children {
		writeTree(buf, c, depth+1)
	}
}

// fmtDur prints a duration rounded to the microsecond: fine enough for
// every priced operation, coarse enough to keep lines readable.
func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
