package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Chrome renders the trace as Chrome trace-event JSON (the "JSON Array
// Format" with B/E duration events), loadable in Perfetto and
// chrome://tracing.
//
// Tracks are *virtual lanes*, not host workers: each patch span is laid
// onto the lane that frees earliest in virtual time (ties go to the
// lowest lane), in submission order. With lanes=1 the whole run is one
// sequential virtual timeline. Host worker identity is scheduling noise —
// putting it in the trace would break byte-identity across -workers — so
// it never appears here; wall-clock figures stay in the volatile runtime
// metrics.
//
// The JSON is hand-assembled so the bytes are deterministic: object keys
// in fixed order, attributes in recorded order, timestamps as exact
// microseconds with nanosecond fraction.
func (t *Trace) Chrome(lanes int) []byte {
	if lanes < 1 {
		lanes = 1
	}
	var buf bytes.Buffer
	buf.WriteString(`{"displayTimeUnit":"ms","otherData":{"clock":"virtual","generator":"jmake"},"traceEvents":[`)
	first := true
	event := func(ph string, name string, ts time.Duration, tid int, attrs []Attr) {
		if !first {
			buf.WriteByte(',')
		}
		first = false
		buf.WriteString(`{"name":`)
		writeJSONString(&buf, name)
		buf.WriteString(`,"cat":"jmake","ph":"`)
		buf.WriteString(ph)
		buf.WriteString(`","ts":`)
		writeMicros(&buf, ts)
		buf.WriteString(`,"pid":1,"tid":`)
		fmt.Fprintf(&buf, "%d", tid)
		if len(attrs) > 0 {
			buf.WriteString(`,"args":{`)
			for i, a := range attrs {
				if i > 0 {
					buf.WriteByte(',')
				}
				writeJSONString(&buf, a.Key)
				buf.WriteByte(':')
				writeJSONString(&buf, a.Value)
			}
			buf.WriteByte('}')
		}
		buf.WriteByte('}')
	}

	// Process/thread naming metadata, then one lane at a time so each
	// track's events are in strictly non-decreasing timestamp order.
	meta := func(name string, tid int, value string) {
		if !first {
			buf.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&buf, `{"name":"%s","cat":"__metadata","ph":"M","ts":0,"pid":1,"tid":%d,"args":{"name":`, name, tid)
		writeJSONString(&buf, value)
		buf.WriteString(`}}`)
	}
	meta("process_name", 0, "jmake virtual time")
	for l := 0; l < lanes; l++ {
		meta("thread_name", l, fmt.Sprintf("virtual lane %d", l))
	}

	laneSpans, laneOffsets := layout(t.Spans, lanes)
	for l := 0; l < lanes; l++ {
		for i, root := range laneSpans[l] {
			off := laneOffsets[l][i]
			var emit func(s *Span)
			emit = func(s *Span) {
				event("B", s.Kind, off+s.Start, l, s.Attrs)
				for _, c := range s.Children {
					emit(c)
				}
				event("E", s.Kind, off+s.End, l, nil)
			}
			emit(root)
		}
	}
	buf.WriteString("]}\n")
	return buf.Bytes()
}

// layout assigns top-level spans to lanes in submission order, each to
// the lane with the earliest free virtual time (lowest index on ties),
// and returns per-lane span lists with their lane-local start offsets.
func layout(spans []*Span, lanes int) ([][]*Span, [][]time.Duration) {
	busy := make([]time.Duration, lanes)
	outSpans := make([][]*Span, lanes)
	outOffs := make([][]time.Duration, lanes)
	for _, s := range spans {
		best := 0
		for l := 1; l < lanes; l++ {
			if busy[l] < busy[best] {
				best = l
			}
		}
		outSpans[best] = append(outSpans[best], s)
		outOffs[best] = append(outOffs[best], busy[best])
		busy[best] += s.Dur()
	}
	return outSpans, outOffs
}

// writeMicros writes a virtual duration as microseconds with exact
// nanosecond fraction ("1234.567").
func writeMicros(buf *bytes.Buffer, d time.Duration) {
	ns := d.Nanoseconds()
	fmt.Fprintf(buf, "%d", ns/1000)
	if frac := ns % 1000; frac != 0 {
		fmt.Fprintf(buf, ".%03d", frac)
	}
}

func writeJSONString(buf *bytes.Buffer, s string) {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		b = []byte(`""`)
	}
	buf.Write(b)
}

// ValidateChrome checks data against the trace-event invariants the
// smoke target cares about: parseable JSON with a traceEvents array,
// every event carrying a valid non-negative integer pid/tid, balanced
// B/E pairs per track with matching names, and non-decreasing timestamps
// within each track.
func ValidateChrome(data []byte) error {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("missing traceEvents array")
	}
	type ev struct {
		Name string   `json:"name"`
		Ph   string   `json:"ph"`
		Ts   *float64 `json:"ts"`
		Pid  *int64   `json:"pid"`
		Tid  *int64   `json:"tid"`
	}
	type track struct{ pid, tid int64 }
	stacks := make(map[track][]string)
	lastTs := make(map[track]float64)
	for i, raw := range doc.TraceEvents {
		var e ev
		if err := json.Unmarshal(raw, &e); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		if e.Pid == nil || e.Tid == nil || *e.Pid < 0 || *e.Tid < 0 {
			return fmt.Errorf("event %d (%s): missing or negative pid/tid", i, e.Name)
		}
		tr := track{*e.Pid, *e.Tid}
		switch e.Ph {
		case "M":
			continue
		case "B", "E":
			if e.Ts == nil {
				return fmt.Errorf("event %d (%s): missing ts", i, e.Name)
			}
			if last, ok := lastTs[tr]; ok && *e.Ts < last {
				return fmt.Errorf("event %d (%s): ts %v before %v on track %v", i, e.Name, *e.Ts, last, tr)
			}
			lastTs[tr] = *e.Ts
			if e.Ph == "B" {
				stacks[tr] = append(stacks[tr], e.Name)
			} else {
				st := stacks[tr]
				if len(st) == 0 {
					return fmt.Errorf("event %d: E %q with no open B on track %v", i, e.Name, tr)
				}
				if top := st[len(st)-1]; top != e.Name {
					return fmt.Errorf("event %d: E %q closes B %q on track %v", i, e.Name, top, tr)
				}
				stacks[tr] = st[:len(st)-1]
			}
		default:
			return fmt.Errorf("event %d (%s): unexpected phase %q", i, e.Name, e.Ph)
		}
	}
	var unbalanced []string
	for tr, st := range stacks {
		if len(st) > 0 {
			unbalanced = append(unbalanced, fmt.Sprintf("track %v: %d unclosed", tr, len(st)))
		}
	}
	sort.Strings(unbalanced)
	if len(unbalanced) > 0 {
		return fmt.Errorf("unbalanced B/E pairs: %v", unbalanced)
	}
	return nil
}
