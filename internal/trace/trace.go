// Package trace is the pipeline's deterministic, virtual-clock-native
// tracing layer. Spans are stamped with vclock virtual times — never wall
// clock — so a trace is a *reproducible artifact*: byte-identical at any
// -workers count and under any result-cache state, exactly like the JSON
// report (DESIGN.md "Observability model").
//
// Discipline, in brief:
//
//   - Each patch gets its own Recorder and vclock.Clock; every virtual
//     duration the checker charges is advanced on that clock exactly once,
//     so span edges line up with the reported stage totals.
//   - Per-patch span trees are merged in submission order (the same
//     in-order merge sched.Map uses for results), never in completion
//     order.
//   - Nothing warmth- or worker-dependent is recorded. Cache outcomes are
//     stamped post-merge from content keys (first occurrence in
//     submission order = "compute", repeats = "reuse") — the canonical
//     outcome an uncached sequential run would observe, mirroring how
//     reported durations always charge the full recompute price.
package trace

import (
	"time"

	"jmake/internal/vclock"
)

// Span kinds. The kind doubles as the stage name in summaries, so these
// match the stage vocabulary used by PipelineMetrics ("config", "make.i",
// "make.o", "backoff").
const (
	KindSession     = "session"
	KindPatch       = "patch"
	KindClassify    = "classify"
	KindStatic      = "static-presence"
	KindFile        = "file"
	KindArch        = "arch"
	KindConfig      = "config"
	KindMakeI       = "make.i"
	KindWitnessScan = "witness-scan"
	KindMakeO       = "make.o"
	KindCacheProbe  = "cache-probe"
	KindBackoff     = "backoff"
	KindHFile       = "h-file"
	KindCoverage    = "coverage"
	KindFinalize    = "finalize"
)

// Attr is one structured key=value attribute on a span. Attribute order
// is preserved (it is part of the exported bytes).
type Attr struct {
	Key, Value string
}

// A constructs a string attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one node in a patch's span tree. Start/End are virtual times
// relative to the patch's own clock (each patch starts at virtual zero).
type Span struct {
	Kind     string
	Start    time.Duration
	End      time.Duration
	Attrs    []Attr
	Children []*Span

	// Key is the span's content identity (compile cache probe key or
	// config identity hash) used for post-merge cache-outcome stamping.
	// Zero means "not a cacheable operation".
	Key uint64
}

// Dur returns the span's virtual duration.
func (s *Span) Dur() time.Duration { return s.End - s.Start }

// Add appends attributes. Safe on a nil span (no-op), so call sites can
// pass around optional spans without guarding.
func (s *Span) Add(attrs ...Attr) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// Attr returns the value of the first attribute named key.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// Walk visits s and its descendants depth-first in recorded order.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Recorder builds one patch's span tree against a per-patch virtual
// clock. It is single-goroutine (one patch is checked by one worker) and
// nil-safe: every method on a nil *Recorder is a no-op, so untraced runs
// pay nothing — the same pattern as faultinject.Injector.
type Recorder struct {
	clock *vclock.Clock
	root  *Span
	open  []*Span // stack of open spans; root at index 0
}

// NewRecorder starts a patch trace rooted at a span of the given kind.
func NewRecorder(kind string, clock *vclock.Clock, attrs ...Attr) *Recorder {
	root := &Span{Kind: kind, Attrs: attrs}
	return &Recorder{clock: clock, root: root, open: []*Span{root}}
}

// Root returns the root span (nil for a nil recorder).
func (r *Recorder) Root() *Span {
	if r == nil {
		return nil
	}
	return r.root
}

// Now returns the recorder's current virtual time.
func (r *Recorder) Now() time.Duration {
	if r == nil {
		return 0
	}
	return r.clock.Now()
}

// Advance moves the virtual clock forward by d without opening a span.
// Use it when a span's duration is known only as a lump sum (the builder
// prices a whole make invocation at once).
func (r *Recorder) Advance(d time.Duration) {
	if r == nil {
		return
	}
	r.clock.Advance(d)
}

// Open starts a child span of the innermost open span at the current
// virtual time and returns its handle.
func (r *Recorder) Open(kind string, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	s := &Span{Kind: kind, Start: r.clock.Now(), Attrs: attrs}
	parent := r.open[len(r.open)-1]
	parent.Children = append(parent.Children, s)
	r.open = append(r.open, s)
	return s
}

// Close ends s (and any spans opened inside it that are still open) at
// the current virtual time. Unknown or nil spans are ignored.
func (r *Recorder) Close(s *Span) {
	if r == nil || s == nil {
		return
	}
	for i := len(r.open) - 1; i > 0; i-- {
		top := r.open[i]
		top.End = r.clock.Now()
		if top == s {
			r.open = r.open[:i]
			return
		}
	}
}

// Leaf records a closed child span of duration d, advancing the clock.
// This is the charge-and-stamp primitive: one call per priced operation.
func (r *Recorder) Leaf(kind string, d time.Duration, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	s := r.Open(kind, attrs...)
	r.clock.Advance(d)
	r.Close(s)
	return s
}

// Mark records a zero-duration child span at the current virtual time.
func (r *Recorder) Mark(kind string, attrs ...Attr) *Span {
	return r.Leaf(kind, 0, attrs...)
}

// Finish closes every open span (including the root) and returns the
// completed tree. The recorder must not be used afterwards.
func (r *Recorder) Finish() *Span {
	if r == nil {
		return nil
	}
	now := r.clock.Now()
	for _, s := range r.open {
		s.End = now
	}
	r.open = r.open[:1]
	return r.root
}

// Trace is a session's merged trace: one top-level span per processed
// patch, in submission order.
type Trace struct {
	Spans []*Span
}

// Stamp assigns the deterministic cache-outcome attribute to every span
// that carries a content key: the first occurrence of a key in submission
// order is "compute", every later one is "reuse". This classification is
// what the canonical uncached sequential execution would observe, so it
// is invariant across -workers counts and cache off/cold/warm — unlike
// the live hit/miss counters, which are warmth-dependent and stay in the
// volatile runtime metrics.
//
// Group spans (make.i over several files) inherit "compute" if any child
// file computes, else "reuse".
func (t *Trace) Stamp() {
	seen := make(map[uint64]bool)
	var walk func(s *Span) bool // reports whether any descendant computed
	walk = func(s *Span) bool {
		computed := false
		if s.Key != 0 {
			if _, ok := s.Attr("cache"); !ok {
				outcome := "reuse"
				if !seen[s.Key] {
					seen[s.Key] = true
					outcome = "compute"
					computed = true
				}
				s.Add(A("cache", outcome))
			}
		}
		childComputed := false
		for _, c := range s.Children {
			if walk(c) {
				childComputed = true
			}
		}
		// A make.i group span preprocesses several files in one invocation
		// (and a make.o span carries its probe identity on a cache-probe
		// child); either inherits "compute" if any keyed child computed.
		if (s.Kind == KindMakeI || s.Kind == KindMakeO) && s.Key == 0 && s.hasKeyedChild() {
			if _, ok := s.Attr("cache"); !ok {
				outcome := "reuse"
				if childComputed {
					outcome = "compute"
				}
				s.Add(A("cache", outcome))
			}
		}
		return computed || childComputed
	}
	for _, s := range t.Spans {
		walk(s)
	}
}

func (s *Span) hasKeyedChild() bool {
	for _, c := range s.Children {
		if c.Key != 0 {
			return true
		}
	}
	return false
}
