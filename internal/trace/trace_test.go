package trace

import (
	"strings"
	"testing"
	"time"

	"jmake/internal/vclock"
)

func newRec(kind string) *Recorder {
	m := vclock.DefaultModel(1)
	return NewRecorder(kind, m.NewClock())
}

func TestRecorderNesting(t *testing.T) {
	r := newRec(KindPatch)
	arch := r.Open(KindArch, A("arch", "x86"))
	cfg := r.Leaf(KindConfig, 2*time.Second, A("kind", "allyes"))
	grp := r.Open(KindMakeI)
	r.Mark(KindFile, A("path", "a.c"))
	r.Advance(3 * time.Second)
	r.Close(grp)
	r.Close(arch)
	root := r.Finish()

	if root.Dur() != 5*time.Second {
		t.Fatalf("root duration %v, want 5s", root.Dur())
	}
	if len(root.Children) != 1 || root.Children[0] != arch {
		t.Fatalf("arch must be the only child of the patch span")
	}
	if cfg.Start != 0 || cfg.End != 2*time.Second {
		t.Fatalf("config span [%v,%v], want [0,2s]", cfg.Start, cfg.End)
	}
	if grp.Start != 2*time.Second || grp.End != 5*time.Second {
		t.Fatalf("make.i span [%v,%v], want [2s,5s]", grp.Start, grp.End)
	}
	mark := grp.Children[0]
	if mark.Start != 2*time.Second || mark.Dur() != 0 {
		t.Fatalf("file mark at %v dur %v, want 2s / 0", mark.Start, mark.Dur())
	}
	if arch.End != 5*time.Second {
		t.Fatalf("arch end %v, want 5s", arch.End)
	}
}

// Close on an outer span must also close still-open inner spans.
func TestCloseCascades(t *testing.T) {
	r := newRec(KindPatch)
	outer := r.Open(KindArch)
	inner := r.Open(KindMakeI)
	r.Advance(time.Second)
	r.Close(outer)
	if inner.End != time.Second {
		t.Fatalf("inner span not closed by outer Close: end %v", inner.End)
	}
	// Recorder must still be usable at root level.
	s := r.Leaf(KindConfig, time.Second)
	if s.Start != time.Second {
		t.Fatalf("post-cascade span starts at %v, want 1s", s.Start)
	}
}

// A nil recorder must be a total no-op so untraced runs cost nothing.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	s := r.Open(KindArch)
	r.Advance(time.Second)
	r.Close(s)
	if r.Leaf(KindConfig, time.Second) != nil || r.Mark(KindFile) != nil {
		t.Fatal("nil recorder returned a span")
	}
	if r.Finish() != nil || r.Now() != 0 {
		t.Fatal("nil recorder Finish/Now not inert")
	}
	s.Add(A("k", "v")) // nil span Add must not panic
}

func TestStampCacheOutcomes(t *testing.T) {
	mkPatch := func(keys ...uint64) *Span {
		p := &Span{Kind: KindPatch}
		grp := &Span{Kind: KindMakeI}
		p.Children = append(p.Children, grp)
		for _, k := range keys {
			grp.Children = append(grp.Children, &Span{Kind: KindFile, Key: k})
		}
		return p
	}
	tr := &Trace{Spans: []*Span{mkPatch(10, 20), mkPatch(10), mkPatch(30, 20)}}
	tr.Stamp()
	want := [][]string{{"compute", "compute"}, {"reuse"}, {"compute", "reuse"}}
	wantGrp := []string{"compute", "reuse", "compute"}
	for i, p := range tr.Spans {
		grp := p.Children[0]
		if got, _ := grp.Attr("cache"); got != wantGrp[i] {
			t.Fatalf("patch %d group cache=%q, want %q", i, got, wantGrp[i])
		}
		for j, f := range grp.Children {
			if got, _ := f.Attr("cache"); got != want[i][j] {
				t.Fatalf("patch %d file %d cache=%q, want %q", i, j, got, want[i][j])
			}
		}
		if got, _ := p.Attr("cache"); got != "" {
			t.Fatalf("patch span must not inherit a cache attr, got %q", got)
		}
	}
}

func buildTrace() *Trace {
	r := newRec(KindPatch)
	r.Root().Add(A("commit", "abc"))
	arch := r.Open(KindArch, A("arch", "x86_64"))
	r.Leaf(KindConfig, 2500*time.Millisecond, A("kind", "allyes"))
	grp := r.Open(KindMakeI)
	r.Mark(KindFile, A("path", "drivers/a.c"))
	r.Advance(12 * time.Second)
	r.Close(grp)
	r.Mark(KindWitnessScan, A("path", "drivers/a.c"))
	r.Leaf(KindMakeO, 4*time.Second+400*time.Nanosecond, A("path", "drivers/a.c"))
	r.Leaf(KindBackoff, time.Second, A("attempt", "1"))
	r.Close(arch)
	return &Trace{Spans: []*Span{r.Finish()}}
}

func TestChromeValid(t *testing.T) {
	for _, lanes := range []int{1, 2, 4} {
		data := buildTrace().Chrome(lanes)
		if err := ValidateChrome(data); err != nil {
			t.Fatalf("lanes=%d: %v\n%s", lanes, err, data)
		}
	}
}

func TestChromeDeterministic(t *testing.T) {
	a := string(buildTrace().Chrome(2))
	b := string(buildTrace().Chrome(2))
	if a != b {
		t.Fatal("Chrome export not byte-identical for identical traces")
	}
}

func TestValidateChromeRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"no events":       `{"foo":1}`,
		"missing pid":     `{"traceEvents":[{"name":"x","ph":"B","ts":0,"tid":0}]}`,
		"unbalanced":      `{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":0}]}`,
		"wrong close":     `{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":0},{"name":"y","ph":"E","ts":1,"pid":1,"tid":0}]}`,
		"time reversal":   `{"traceEvents":[{"name":"x","ph":"B","ts":5,"pid":1,"tid":0},{"name":"x","ph":"E","ts":1,"pid":1,"tid":0}]}`,
		"stray end":       `{"traceEvents":[{"name":"x","ph":"E","ts":0,"pid":1,"tid":0}]}`,
		"negative tid":    `{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":-1}]}`,
		"unknown phase":   `{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":1,"tid":0}]}`,
		"missing ts on B": `{"traceEvents":[{"name":"x","ph":"B","pid":1,"tid":0}]}`,
	}
	for name, data := range cases {
		if err := ValidateChrome([]byte(data)); err == nil {
			t.Errorf("%s: validator accepted invalid trace", name)
		}
	}
	if err := ValidateChrome([]byte(`{"traceEvents":[]}`)); err != nil {
		t.Errorf("empty trace must validate: %v", err)
	}
}

// Lane layout: spans fill the emptiest lane in submission order, so the
// assignment is a pure function of the span durations.
func TestLaneLayout(t *testing.T) {
	mk := func(d time.Duration) *Span { return &Span{Kind: KindPatch, End: d} }
	spans := []*Span{mk(10), mk(2), mk(3), mk(1)}
	laneSpans, laneOffs := layout(spans, 2)
	// 10 -> lane0; 2 -> lane1; 3 -> lane1 (busy 2 < 10); 1 -> lane1 (5 < 10).
	if len(laneSpans[0]) != 1 || len(laneSpans[1]) != 3 {
		t.Fatalf("lane sizes %d/%d, want 1/3", len(laneSpans[0]), len(laneSpans[1]))
	}
	wantOffs := []time.Duration{0, 2, 5}
	for i, off := range laneOffs[1] {
		if off != wantOffs[i] {
			t.Fatalf("lane1 offset[%d] = %v, want %v", i, off, wantOffs[i])
		}
	}
}

func TestTreeAndSummary(t *testing.T) {
	tr := buildTrace()
	tree := tr.Tree()
	for _, want := range []string{
		"session: 1 patch spans",
		"patch @0s +", "arch @0s +", "arch=x86_64",
		"config @0s +2.5s", "make.i @2.5s +12s",
		"file @2.5s +0s path=drivers/a.c",
		"witness-scan @14.5s", "make.o @14.5s +4s", "backoff @18.5s +1s",
	} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	lines := tr.Summarize()
	byStage := map[string]StageLine{}
	for _, l := range lines {
		byStage[l.Stage] = l
	}
	if l := byStage[KindMakeO]; l.Arch != "x86_64" || l.Count != 1 || l.Virtual != 4*time.Second+400*time.Nanosecond {
		t.Fatalf("make.o summary %+v wrong", l)
	}
	if l := byStage[KindBackoff]; l.Count != 1 || l.Virtual != time.Second {
		t.Fatalf("backoff summary %+v wrong", l)
	}
	if !strings.Contains(tr.RenderSummary(), "make.i") {
		t.Fatalf("rendered summary missing make.i:\n%s", tr.RenderSummary())
	}
}
