package trace

import (
	"fmt"
	"sort"
	"time"

	"jmake/internal/stats"
)

// StageLine is one row of the per-arch/per-stage attribution summary.
type StageLine struct {
	Stage   string
	Arch    string
	Count   int
	Virtual time.Duration
}

// Summarize aggregates the priced stage spans (config, make.i, make.o,
// backoff) by (stage, arch). The arch is inherited from the nearest
// enclosing span carrying an "arch" attribute; spans outside any arch
// context (e.g. backoff while creating a configuration before its arch
// span opened) report under the arch attribute they carry themselves, or
// "-". Rows are sorted by stage then arch.
func (t *Trace) Summarize() []StageLine {
	type key struct{ stage, arch string }
	agg := make(map[key]*StageLine)
	var walk func(s *Span, arch string)
	walk = func(s *Span, arch string) {
		if a, ok := s.Attr("arch"); ok {
			arch = a
		}
		switch s.Kind {
		case KindConfig, KindMakeI, KindMakeO, KindBackoff:
			a := arch
			if a == "" {
				a = "-"
			}
			k := key{s.Kind, a}
			line, ok := agg[k]
			if !ok {
				line = &StageLine{Stage: s.Kind, Arch: a}
				agg[k] = line
			}
			line.Count++
			line.Virtual += s.Dur()
		}
		for _, c := range s.Children {
			walk(c, arch)
		}
	}
	for _, s := range t.Spans {
		walk(s, "")
	}
	out := make([]StageLine, 0, len(agg))
	for _, l := range agg {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Arch < out[j].Arch
	})
	return out
}

// RenderSummary formats Summarize as the per-arch/per-stage table shown
// by jmake-eval and jmake-lint.
func (t *Trace) RenderSummary() string {
	lines := t.Summarize()
	tb := stats.NewTable("stage", "arch", "spans", "virtual s")
	var total time.Duration
	n := 0
	for _, l := range lines {
		tb.AddRow(l.Stage, l.Arch, fmt.Sprintf("%d", l.Count),
			fmt.Sprintf("%.1f", l.Virtual.Seconds()))
		total += l.Virtual
		n += l.Count
	}
	tb.AddRow("total", "", fmt.Sprintf("%d", n), fmt.Sprintf("%.1f", total.Seconds()))
	return tb.String()
}
