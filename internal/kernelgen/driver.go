package kernelgen

import (
	"fmt"
	"strings"
)

// nameSyllables feed driver name generation.
var nameSyllables = []string{
	"al", "bex", "cor", "dan", "el", "fir", "gam", "hex", "ion", "jor",
	"kel", "lum", "mar", "nex", "oro", "pax", "quil", "rov", "sel", "tor",
	"ul", "vex", "wim", "xan", "yor", "zet", "bri", "cas", "dra", "fen",
}

// archBoundWeights biases which architectures host arch-bound drivers; the
// paper found arm the most frequently useful non-host architecture, with
// janitor patches also touching powerpc, mips, blackfin and parisc (§V-B).
var archBoundWeights = []struct {
	arch   string
	weight int
}{
	{"arm", 40}, {"powerpc", 14}, {"mips", 12}, {"blackfin", 8},
	{"parisc", 6}, {"sparc", 4}, {"s390", 4}, {"sh", 3}, {"m68k", 3},
	{"ia64", 2}, {"alpha", 2}, {"xtensa", 2},
}

func (g *generator) pickArchBound() string {
	total := 0
	for _, w := range archBoundWeights {
		total += w.weight
	}
	n := g.rng.Intn(total)
	for _, w := range archBoundWeights {
		n -= w.weight
		if n < 0 {
			return w.arch
		}
	}
	return "arm"
}

// subsystemsAndDrivers generates every subsystem directory: Kconfig,
// Makefile, API header, a core file and the drivers.
func (g *generator) subsystemsAndDrivers() {
	usedNames := make(map[string]bool)
	for si, spec := range subsystems {
		headerPath := g.subsystemHeader(spec)
		sub := Subsystem{
			Dir: spec.Dir, Name: spec.Name, ConfigVar: spec.ConfigVar,
			Header: headerPath, List: spec.List,
			Funcs: spec.Funcs, Macros: spec.Macros,
		}
		g.man.Subsystems = append(g.man.Subsystems, sub)

		var kc strings.Builder
		fmt.Fprintf(&kc, "config %s\n\tbool \"%s support\"\n\tdefault y\n\n", spec.ConfigVar, spec.Dir)
		fmt.Fprintf(&kc, "config %s_DEBUG\n\tbool \"%s debugging\"\n\tdefault y\n\tdepends on %s\n\n",
			spec.ConfigVar, spec.Dir, spec.ConfigVar)

		var mk strings.Builder
		mk.WriteString("obj-y += core.o\n")
		g.subsystemCore(si, spec)

		n := int(float64(spec.Drivers)*g.scale + 0.5)
		if n < 1 {
			n = 1
		}
		maintainers := g.subsystemMaintainers(spec)
		for i := 0; i < n; i++ {
			d := g.oneDriver(si, spec, usedNames, maintainers)
			g.man.Drivers = append(g.man.Drivers, d)

			// Makefile rules.
			baseObj := strings.TrimSuffix(d.CFile[strings.LastIndexByte(d.CFile, '/')+1:], ".c")
			if d.ExtraCFile != "" {
				extraObj := strings.TrimSuffix(d.ExtraCFile[strings.LastIndexByte(d.ExtraCFile, '/')+1:], ".c")
				fmt.Fprintf(&mk, "obj-$(CONFIG_%s) += %s.o\n%s-objs := %s.o %s.o\n",
					d.ConfigVar, d.Name, d.Name, baseObj, extraObj)
			} else {
				fmt.Fprintf(&mk, "obj-$(CONFIG_%s) += %s.o\n", d.ConfigVar, baseObj)
			}

			// Kconfig declaration: in the subsystem Kconfig for portable
			// drivers, in the architecture's Kconfig for arch-bound ones.
			decl := g.driverKconfig(d, spec)
			if d.ArchBound == "" {
				kc.WriteString(decl)
			} else {
				g.archDriverKconfig[d.ArchBound] = append(g.archDriverKconfig[d.ArchBound], decl)
			}
		}
		g.tree.Write(spec.Dir+"/Kconfig", kc.String())
		g.tree.Write(spec.Dir+"/Makefile", mk.String())
	}
	g.finishArchKconfigs()
}

// driverKconfig renders the Kconfig block for a driver and its extension
// symbols, and records the driver's intentional escape-class symbols in
// the audit baseline: the audit would otherwise (correctly) report the
// dead legacy option, the phantom guards, and the never-true #ifndef body
// as mismatches, and they are fixtures, not defects.
func (g *generator) driverKconfig(d Driver, spec subsysSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "config %s\n\ttristate \"%s driver\"\n\tdepends on %s\n\n", d.ConfigVar, d.Name, spec.ConfigVar)
	if d.Sites[SiteIfdefNotAllyes] {
		// Depends on an undeclared symbol: no configuration strategy can
		// ever set it (Table IV row 1 when edited).
		fmt.Fprintf(&b, "config %s_LEGACY\n\tbool \"%s legacy interface\"\n\tdepends on %s && BROKEN_PLATFORM_GLUE\n\n",
			d.ConfigVar, d.Name, d.ConfigVar)
		g.man.AuditBaseline = append(g.man.AuditBaseline, d.ConfigVar+"_LEGACY")
	}
	if d.Sites[SiteIfdefNever] {
		g.man.AuditBaseline = append(g.man.AuditBaseline, d.ConfigVar+"_PHANTOM_GLUE")
	}
	if d.Sites[SiteHeaderPhantom] {
		g.man.AuditBaseline = append(g.man.AuditBaseline, d.ConfigVar+"_PHANTOM_HDR")
	}
	if d.Sites[SiteIfndef] {
		// The #ifndef CONFIG_<subsystem> body is tree-wide dead: the file's
		// Kbuild gate forces the subsystem option on.
		g.man.AuditBaseline = append(g.man.AuditBaseline, spec.ConfigVar)
	}
	if d.Sites[SiteArchQuirk] {
		// The quirk symbol lives in one architecture's Kconfig (default y
		// there, undeclared elsewhere). Because its block mentions the
		// driver's gating variable, JMake's arch heuristic (§III-C) finds
		// that architecture and recovers the region.
		g.archDriverKconfig[d.QuirkArch] = append(g.archDriverKconfig[d.QuirkArch],
			fmt.Sprintf("config %s_QUIRK\n\tbool \"%s platform quirk\"\n\tdefault y\n\tdepends on %s\n",
				d.ConfigVar, d.Name, d.ConfigVar))
	}
	if d.Sites[SiteDefconfigOnly] {
		// Enabled only when MAINSTREAM is explicitly switched off, which
		// allyesconfig never does but the extended defconfig does.
		fmt.Fprintf(&b, "config %s_EXT\n\tbool \"%s extended mode\"\n\tdepends on %s && !MAINSTREAM\n\n",
			d.ConfigVar, d.Name, d.ConfigVar)
		arch := d.ArchBound
		if arch == "" {
			arch = "x86_64"
		}
		g.defconfigExtras[arch] = append(g.defconfigExtras[arch],
			fmt.Sprintf("CONFIG_%s=y", d.ConfigVar),
			fmt.Sprintf("CONFIG_%s_EXT=y", d.ConfigVar))
	}
	return b.String()
}

// subsystemCore writes the subsystem's core.c.
func (g *generator) subsystemCore(si int, spec subsysSpec) {
	var b strings.Builder
	fmt.Fprintf(&b, `/*
 * %s core support.
 */
#include <linux/kernel.h>
#include <linux/slab.h>
#include <linux/errno.h>
#include <linux/%s>

static int core_users;

int %s_core_register(void)
{
	core_users = core_users + 1;
	%s();
	return core_users;
}

int %s_core_unregister(void)
{
	if (core_users == 0)
		return -EINVAL;
	core_users = core_users - 1;
	return 0;
}
`, spec.Dir, spec.Header, strings.ToLower(spec.ConfigVar), spec.Funcs[0], strings.ToLower(spec.ConfigVar))
	g.tree.Write(spec.Dir+"/core.c", b.String())
}

// subsystemMaintainers creates maintainer identities for a subsystem, one
// per dozen drivers, so that no single identity absorbs enough breadth to
// masquerade as a janitor in the §IV study.
func (g *generator) subsystemMaintainers(spec subsysSpec) []string {
	n := 2 + g.rng.Intn(3) + int(float64(spec.Drivers)*g.scale)/12
	out := make([]string, n)
	for i := range out {
		first := pick(g.rng, []string{"Alex", "Sam", "Ming", "Priya", "Lars",
			"Tanya", "Igor", "Wei", "Ana", "Hiro", "Olga", "Ravi"})
		last := pick(g.rng, []string{"Berg", "Chen", "Dietrich", "Evans",
			"Fischer", "Gupta", "Hansen", "Ivanov", "Kato", "Larsen", "Mehta",
			"Novak", "Olsen", "Petrov", "Rossi", "Sato"})
		out[i] = fmt.Sprintf("%s %s <%s.%s.%d@kernel.example.org>",
			first, last, strings.ToLower(first), strings.ToLower(last), g.rng.Intn(100))
	}
	return out
}

// newDriverName generates a unique plausible driver name.
func (g *generator) newDriverName(used map[string]bool) string {
	for {
		n := 2 + g.rng.Intn(2)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(pick(g.rng, nameSyllables))
		}
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "%d", 100+g.rng.Intn(900))
		}
		name := b.String()
		if !used[name] {
			used[name] = true
			return name
		}
	}
}

// oneDriver generates a driver's source files and returns its descriptor.
func (g *generator) oneDriver(si int, spec subsysSpec, usedNames map[string]bool, maintainers []string) Driver {
	name := g.newDriverName(usedNames)
	d := Driver{
		Name:      name,
		Subsystem: si,
		ConfigVar: strings.ToUpper(name),
		CFile:     fmt.Sprintf("%s/%s.c", spec.Dir, name),
		Sites:     map[SiteClass]bool{SitePlain: true, SiteComment: true},
		EntryName: strings.ToUpper(name) + " DRIVER",
	}
	d.Maintainer = pick(g.rng, maintainers)
	if g.rng.Intn(100) < 25 {
		d.List = fmt.Sprintf("%s-devel@lists.example.org", name)
	} else {
		d.List = spec.List
	}

	// Staging drivers have no individual MAINTAINERS entry — they fall
	// under the STAGING umbrella, as in the real kernel. This is what makes
	// low-subsystem-count janitor profiles (Table II's Shraddha Barke row)
	// possible.
	if spec.Dir == "drivers/staging" {
		d.EntryName = ""
		d.List = spec.List
	}

	roll := func(pct int) bool { return g.rng.Intn(100) < pct }
	switch {
	case roll(5):
		d.ArchBound = g.pickArchBound()
	case roll(1):
		// Bound to an architecture whose cross-compiler is broken: JMake
		// reports "unsupported architecture required" for these.
		d.ArchBound = brokenArches[g.rng.Intn(len(brokenArches))]
	case roll(3):
		d.QuirkArch = g.pickArchBound()
		d.Sites[SiteArchQuirk] = true
	}
	if roll(40) {
		d.Sites[SiteMacroBody] = true
	}
	if roll(50) {
		d.Sites[SiteIfdefOn] = true
	}
	if roll(12) {
		d.Sites[SiteIfdefModule] = true
	}
	if roll(6) {
		d.Sites[SiteIfdefNotAllyes] = true
	}
	if roll(4) {
		d.Sites[SiteDefconfigOnly] = true
	}
	if roll(4) {
		d.Sites[SiteIfdefNever] = true
	}
	if roll(6) {
		d.Sites[SiteIfndef] = true
	}
	if roll(6) {
		d.Sites[SiteBothBranches] = true
	}
	if roll(5) {
		d.Sites[SiteIfZero] = true
	}
	if roll(8) {
		d.Sites[SiteUnusedMacro] = true
	}
	if roll(22) {
		d.Header = fmt.Sprintf("%s/%s.h", spec.Dir, name)
	}
	twoFiles := roll(15)
	if twoFiles {
		// Composite objects may not share their own member's name:
		// name.o is assembled from name_main.o and name_hw.o.
		d.CFile = fmt.Sprintf("%s/%s_main.c", spec.Dir, name)
	}
	big := roll(4)

	g.writeDriverFiles(&d, spec, twoFiles, big)
	return d
}

// writeDriverFiles emits the driver's header and source file(s).
func (g *generator) writeDriverFiles(d *Driver, spec subsysSpec, twoFiles, big bool) {
	up := strings.ToUpper(d.Name)
	// Arch-bound drivers call their architecture's platform hook, declared
	// in that arch's asm/io.h, so they must include <linux/io.h>.
	usesIO := d.ArchBound != "" || g.rng.Intn(100) < 70

	if d.Header != "" {
		if g.rng.Intn(100) < 12 {
			d.Sites[SiteHeaderPhantom] = true
		}
		var h strings.Builder
		guard := "_" + up + "_H"
		fmt.Fprintf(&h, "#ifndef %s\n#define %s\n\n", guard, guard)
		fmt.Fprintf(&h, "#define %s_FIFO_DEPTH %d\n", up, 8<<uint(g.rng.Intn(4)))
		fmt.Fprintf(&h, "#define %s_IRQ_MASK 0x%02x\n\n", up, g.rng.Intn(255)+1)
		if d.Sites[SiteHeaderPhantom] {
			fmt.Fprintf(&h, "#ifdef CONFIG_%s_PHANTOM_HDR\n#define %s_PHANTOM_SHIFT %d\n#endif\n\n",
				d.ConfigVar, up, 1+g.rng.Intn(7))
		}
		fmt.Fprintf(&h, "struct %s_config {\n\tint rate;\n\tint channels;\n};\n\n", d.Name)
		fmt.Fprintf(&h, "extern int %s_hw_reset(void);\n", d.Name)
		fmt.Fprintf(&h, "\n#endif /* %s */\n", guard)
		g.tree.Write(d.Header, h.String())
	}

	var b strings.Builder
	fmt.Fprintf(&b, `/*
 * %s - %s driver.
 *
 * Copyright (C) 2015 %s
 */
`, d.Name, spec.Dir, d.Maintainer)
	b.WriteString("#include <linux/kernel.h>\n#include <linux/module.h>\n#include <linux/slab.h>\n#include <linux/errno.h>\n")
	if usesIO {
		b.WriteString("#include <linux/io.h>\n")
	}
	if g.rng.Intn(100) < 30 {
		b.WriteString("#include <linux/delay.h>\n")
	}
	fmt.Fprintf(&b, "#include <linux/%s>\n", spec.Header)
	if d.Header != "" {
		fmt.Fprintf(&b, "#include %q\n", d.Name+".h")
	}
	b.WriteString("\n")

	// Register macros (SitePlain targets). Every one is used below, so a
	// changed define is always witnessed unless deliberately unused.
	regNames := []string{"CTRL", "STAT", "DATA", "MASK"}[:2+g.rng.Intn(3)]
	for i, r := range regNames {
		fmt.Fprintf(&b, "#define %s_REG_%s 0x%02x\n", up, r, 4*(i+1))
	}
	fmt.Fprintf(&b, "#define %s_TIMEOUT_MS %d\n", up, 100*(1+g.rng.Intn(20)))
	if d.Sites[SiteMacroBody] {
		fmt.Fprintf(&b, "#define %s_MUX_CHAN(x) \\\n\t((((x) & 0xf) << 4) | \\\n\t (((x) & 0xf) << 0))\n", up)
	}
	if d.Sites[SiteUnusedMacro] {
		fmt.Fprintf(&b, "#define %s_SPARE_MASK 0x%02x\n", up, g.rng.Intn(255)+1)
	}
	b.WriteString("\n")

	fmt.Fprintf(&b, "struct %s_priv {\n\tint state;\n\tu32 flags;\n\tunsigned long base;\n};\n\n", d.Name)

	funcs := 3 + g.rng.Intn(3)
	if big {
		funcs = 14 + g.rng.Intn(10)
	}
	var helperNames []string
	for i := 0; i < funcs; i++ {
		fn := fmt.Sprintf("%s_op%d", d.Name, i)
		helperNames = append(helperNames, fn)
		g.writeHelper(&b, d, spec, fn, up, usesIO, helperNames[:len(helperNames)-1])
	}

	// Reference every register macro so their defines are always subjected
	// to compilation via expansion.
	fmt.Fprintf(&b, "static unsigned long %s_reg_window(void)\n{\n\treturn 0", d.Name)
	for _, r := range regNames {
		fmt.Fprintf(&b, " + %s_REG_%s", up, r)
	}
	fmt.Fprintf(&b, " + %s_TIMEOUT_MS;\n}\n\n", up)

	// Optional debug block under a satisfied config (compiled).
	if d.Sites[SiteIfdefOn] {
		fmt.Fprintf(&b, "#ifdef CONFIG_%s_DEBUG\nstatic void %s_dump(struct %s_priv *p)\n{\n\tpr_debug(\"state=%%d\", p->state);\n\tpr_debug(\"flags=%%d\", p->flags);\n}\n#endif\n\n",
			spec.ConfigVar, d.Name, d.Name)
	}

	g.writeProbe(&b, d, spec, up, usesIO, helperNames)

	fmt.Fprintf(&b, "static int %s_init(void)\n{\n\tpr_info(\"%s: loaded\");\n\treturn %s_probe();\n}\n\nmodule_init(%s_init);\nMODULE_LICENSE(\"GPL\");\n",
		d.Name, d.Name, d.Name, d.Name)

	g.tree.Write(d.CFile, b.String())

	if twoFiles {
		extra := fmt.Sprintf("%s/%s_hw.c", spec.Dir, d.Name)
		d.ExtraCFile = extra
		var e strings.Builder
		fmt.Fprintf(&e, `/*
 * %s - hardware access paths.
 */
#include <linux/kernel.h>
#include <linux/errno.h>
%s
#define %s_HW_RETRIES %d

int %s_hw_reset(void)
{
	int tries = %s_HW_RETRIES;
	while (tries > 0) {
		tries = tries - 1;
%s	}
	return tries == 0 ? -EIO : 0;
}
`, d.Name, ifString(usesIO, "#include <linux/io.h>\n"), up, 2+g.rng.Intn(6),
			d.Name, up,
			ifString(usesIO, "\t\twritel(1, 0x30);\n"))
		g.tree.Write(extra, e.String())
	}
}

func ifString(cond bool, s string) string {
	if cond {
		return s
	}
	return ""
}

// writeHelper emits one static helper function with editable lines.
func (g *generator) writeHelper(b *strings.Builder, d *Driver, spec subsysSpec, fn, up string, usesIO bool, prior []string) {
	fmt.Fprintf(b, "static int %s(struct %s_priv *p, int arg)\n{\n", fn, d.Name)
	fmt.Fprintf(b, "\t/* note: tuning path %d */\n", g.rng.Intn(100))
	fmt.Fprintf(b, "\tint val = %d;\n", g.rng.Intn(64))
	if usesIO && g.rng.Intn(2) == 0 {
		fmt.Fprintf(b, "\tval = readl(p->base + %s_REG_STAT);\n", up)
	}
	if g.rng.Intn(2) == 0 {
		fmt.Fprintf(b, "\tp->flags = %s_TIMEOUT_MS;\n", up)
	}
	if len(prior) > 0 && g.rng.Intn(3) == 0 {
		fmt.Fprintf(b, "\t%s(p, val);\n", pick(g.rng, prior))
	}
	if g.rng.Intn(3) == 0 {
		fmt.Fprintf(b, "\tprintk(\"%s: arg %%d\", arg);\n", d.Name)
	}
	fmt.Fprintf(b, "\tif (val < 0)\n\t\treturn -EINVAL;\n")
	fmt.Fprintf(b, "\treturn val + arg;\n}\n\n")
}

// writeProbe emits the probe function containing the escape-class blocks.
func (g *generator) writeProbe(b *strings.Builder, d *Driver, spec subsysSpec, up string, usesIO bool, helpers []string) {
	fmt.Fprintf(b, "int %s_probe(void)\n{\n", d.Name)
	fmt.Fprintf(b, "\tstruct %s_priv *p = kzalloc(sizeof(*p), GFP_KERNEL);\n", d.Name)
	fmt.Fprintf(b, "\tint ret = 0;\n")
	if d.Sites[SiteMacroBody] {
		fmt.Fprintf(b, "\tint chan = %s_MUX_CHAN(%d);\n", up, g.rng.Intn(8))
	} else {
		fmt.Fprintf(b, "\tint chan = %d;\n", g.rng.Intn(8))
	}
	b.WriteString("\tif (!p)\n\t\treturn -ENOMEM;\n")
	fmt.Fprintf(b, "\tp->state = %d;\n", g.rng.Intn(10))
	fmt.Fprintf(b, "\tp->flags = p->flags | %s;\n", pick(g.rng, spec.Macros))
	if d.Header != "" {
		// Use the local header's macros so that JMake's hint-driven header
		// hunt (§III-E) can find this file by macro name.
		fmt.Fprintf(b, "\tp->flags = p->flags & %s_IRQ_MASK;\n", up)
		fmt.Fprintf(b, "\tret = %s_hw_reset() + %s_FIFO_DEPTH;\n", d.Name, up)
	}
	if usesIO {
		fmt.Fprintf(b, "\toutw(chan, p->base + %s_REG_CTRL);\n", up)
	}
	for _, h := range helpers[:minInt(2, len(helpers))] {
		fmt.Fprintf(b, "\tret = %s(p, chan);\n", h)
	}
	fmt.Fprintf(b, "\t%s();\n", pick(g.rng, spec.Funcs))

	if d.ArchBound != "" {
		fmt.Fprintf(b, "\t%s_plat_init();\n", d.ArchBound)
	}
	if d.Sites[SiteIfdefOn] {
		fmt.Fprintf(b, "#ifdef CONFIG_%s_DEBUG\n\t%s_dump(p);\n#endif\n", spec.ConfigVar, d.Name)
	}
	if d.Sites[SiteIfdefModule] {
		fmt.Fprintf(b, "#ifdef MODULE\n\tpr_info(\"%s: running as %%s\", THIS_MODULE_NAME);\n\tp->flags = p->flags | 0x%02x;\n#endif\n", d.Name, g.rng.Intn(255)+1)
	}
	if d.Sites[SiteIfdefNotAllyes] {
		fmt.Fprintf(b, "#ifdef CONFIG_%s_LEGACY\n\tp->flags = 0x%02x;\n\tpr_warn(\"%s: legacy mode\");\n#endif\n", d.ConfigVar, g.rng.Intn(255)+1, d.Name)
	}
	if d.Sites[SiteDefconfigOnly] {
		fmt.Fprintf(b, "#ifdef CONFIG_%s_EXT\n\tp->state = %d;\n\tpr_info(\"%s: extended mode\");\n#endif\n", d.ConfigVar, 1+g.rng.Intn(9), d.Name)
	}
	if d.Sites[SiteArchQuirk] {
		fmt.Fprintf(b, "#ifdef CONFIG_%s_QUIRK\n\tp->flags = p->flags | 0x%02x;\n\tpr_info(\"%s: %s quirk active\");\n#endif\n",
			d.ConfigVar, g.rng.Intn(255)+1, d.Name, d.QuirkArch)
	}
	if d.Sites[SiteIfdefNever] {
		fmt.Fprintf(b, "#ifdef CONFIG_%s_PHANTOM_GLUE\n\tp->flags = 0;\n\tpr_warn(\"%s: phantom glue\");\n#endif\n", d.ConfigVar, d.Name)
	}
	if d.Sites[SiteIfndef] {
		fmt.Fprintf(b, "#ifndef CONFIG_%s\n\tp->state = %d;\n\tpr_err(\"%s: built without %s\");\n#endif\n", spec.ConfigVar, g.rng.Intn(9), d.Name, spec.ConfigVar)
	}
	if d.Sites[SiteBothBranches] {
		fmt.Fprintf(b, "#ifdef CONFIG_%s_DEBUG\n\tp->flags = 0x%02x;\n\tpr_debug(\"%s: verbose probe\");\n#else\n\tret = %d;\n#endif\n", spec.ConfigVar, g.rng.Intn(255)+1, d.Name, g.rng.Intn(9)+1)
	}
	if d.Sites[SiteIfZero] {
		fmt.Fprintf(b, "#if 0\n\t/* dead tuning experiment */\n\tp->flags = 0x%02x;\n\tmdelay_legacy(%d);\n#endif\n", g.rng.Intn(255)+1, g.rng.Intn(50))
	}

	b.WriteString("\tif (ret < 0) {\n\t\tkfree(p);\n\t\treturn ret;\n\t}\n")
	b.WriteString("\tkfree(p);\n\treturn 0;\n}\n\n")
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
