package kernelgen

import (
	"strings"
	"testing"

	"jmake/internal/fstree"
	"jmake/internal/kbuild"
	"jmake/internal/kconfig"
	"jmake/internal/maintainers"
	"jmake/internal/vclock"
)

func generateSmall(t *testing.T) (*fstree.Tree, *Manifest) {
	t.Helper()
	tree, man, err := Generate(Params{Seed: 7, Scale: 0.15})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return tree, man
}

func TestGenerateDeterministic(t *testing.T) {
	t1, _, err := Generate(Params{Seed: 42, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := Generate(Params{Seed: 42, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := t1.Paths(), t2.Paths()
	if len(p1) != len(p2) {
		t.Fatalf("path counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("path %d differs: %s vs %s", i, p1[i], p2[i])
		}
		c1, _ := t1.Read(p1[i])
		c2, _ := t2.Read(p2[i])
		if c1 != c2 {
			t.Fatalf("content differs for %s", p1[i])
		}
	}
	t3, _, err := Generate(Params{Seed: 43, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Paths()) == len(p1) {
		same := true
		for i, p := range t3.Paths() {
			if p != p1[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical trees")
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	tr, man := generateSmall(t)
	for _, want := range []string{
		"Makefile", "Kconfig.shared", "Kbuild.meta", "MAINTAINERS",
		"include/linux/kernel.h", "include/linux/types.h",
		"arch/x86_64/Kconfig", "arch/arm/include/asm/io.h",
		"arch/powerpc/kernel/prom_init.c",
	} {
		if !tr.Exists(want) {
			t.Errorf("missing %s", want)
		}
	}
	if len(man.Drivers) < 30 {
		t.Errorf("drivers = %d, want >= 30 at scale 0.15", len(man.Drivers))
	}
	if len(man.Subsystems) != len(subsystems) {
		t.Errorf("subsystems = %d, want %d", len(man.Subsystems), len(subsystems))
	}
	if len(man.SetupFiles) == 0 || man.WholeBuildFile == "" {
		t.Error("meta populated incompletely")
	}
	if len(man.WorkingArches) != 24 || len(man.BrokenArches) != 2 {
		t.Errorf("arches = %d working, %d broken", len(man.WorkingArches), len(man.BrokenArches))
	}
}

func TestGeneratedKconfigParses(t *testing.T) {
	tr, _ := generateSmall(t)
	for _, arch := range []string{"x86_64", "arm", "powerpc"} {
		kt, err := kconfig.Parse(kbuild.TreeSource{T: tr}, "arch/"+arch+"/Kconfig")
		if err != nil {
			t.Fatalf("Kconfig parse for %s: %v", arch, err)
		}
		if kt.Len() < 50 {
			t.Errorf("%s: only %d symbols", arch, kt.Len())
		}
		cfg := kt.AllYesConfig()
		if cfg.Value("MAINSTREAM") != kconfig.Yes {
			t.Errorf("%s: MAINSTREAM = %v", arch, cfg.Value("MAINSTREAM"))
		}
	}
}

func TestGeneratedMaintainersParses(t *testing.T) {
	tr, man := generateSmall(t)
	content, err := tr.Read("MAINTAINERS")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := maintainers.Parse(content)
	if err != nil {
		t.Fatalf("MAINTAINERS parse: %v", err)
	}
	// +1: the preamble line parses as a pattern-less entry, like the real
	// MAINTAINERS header text. Staging drivers have no entry of their own.
	withEntry := 0
	for _, d := range man.Drivers {
		if d.EntryName != "" {
			withEntry++
		}
	}
	want := len(man.Subsystems) + withEntry + 1
	if len(entries) != want {
		t.Errorf("entries = %d, want %d", len(entries), want)
	}
	ix := maintainers.NewIndex(entries)
	d := man.Drivers[0]
	subs := ix.SubsystemsFor(d.CFile)
	if len(subs) < 2 {
		t.Errorf("driver file %s matches %v, want subsystem + driver entries", d.CFile, subs)
	}
}

// The make-or-break property: the whole generated tree compiles. Every
// reachable .c file must preprocess and compile under its architecture's
// allyesconfig.
func TestGeneratedTreeCompiles(t *testing.T) {
	tr, man := generateSmall(t)
	meta, err := kbuild.LoadMeta(tr)
	if err != nil {
		t.Fatal(err)
	}
	arches := kbuild.DiscoverArches(tr, meta)
	model := vclock.DefaultModel(1)

	compileAll := func(archName string, paths []string) {
		t.Helper()
		arch := arches[archName]
		kt, err := kconfig.Parse(kbuild.TreeSource{T: tr}, arch.KconfigRoot)
		if err != nil {
			t.Fatalf("%s Kconfig: %v", archName, err)
		}
		cfg := kt.AllYesConfig()
		b, err := kbuild.NewBuilder(tr, arch, cfg, meta, model)
		if err != nil {
			t.Fatalf("builder %s: %v", archName, err)
		}
		compiled := 0
		for _, p := range paths {
			if _, err := b.Reachable(p); err != nil {
				continue // gated off for this arch (arch-bound elsewhere)
			}
			if _, _, err := b.MakeO(p); err != nil {
				t.Errorf("[%s] %s does not compile: %v", archName, p, err)
			}
			compiled++
		}
		if compiled == 0 {
			t.Errorf("[%s] nothing compiled", archName)
		}
	}

	var all []string
	for _, p := range tr.Paths() {
		if strings.HasSuffix(p, ".c") && !strings.HasPrefix(p, "tools/") {
			all = append(all, p)
		}
	}
	compileAll("x86_64", all)

	// Every arch-bound driver compiles on its own architecture (except
	// those bound to an architecture without a working cross-compiler).
	for _, d := range man.Drivers {
		if d.ArchBound == "" || meta.BrokenArches[d.ArchBound] {
			continue
		}
		compileAll(d.ArchBound, []string{d.CFile})
	}
}

// Arch-bound drivers must NOT be reachable on the host architecture.
func TestArchBoundUnreachableOnHost(t *testing.T) {
	tr, man := generateSmall(t)
	meta, _ := kbuild.LoadMeta(tr)
	arches := kbuild.DiscoverArches(tr, meta)
	kt, err := kconfig.Parse(kbuild.TreeSource{T: tr}, arches["x86_64"].KconfigRoot)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kt.AllYesConfig()
	b, err := kbuild.NewBuilder(tr, arches["x86_64"], cfg, meta, vclock.DefaultModel(1))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range man.Drivers {
		if d.ArchBound == "" || d.ArchBound == "x86_64" {
			continue
		}
		found = true
		if _, err := b.Reachable(d.CFile); err == nil {
			t.Errorf("%s (bound to %s) reachable on x86_64", d.CFile, d.ArchBound)
		}
	}
	if !found {
		t.Skip("no arch-bound drivers at this scale/seed")
	}
}

func TestSiteClassesPresent(t *testing.T) {
	_, man := generateSmall(t)
	counts := map[SiteClass]int{}
	for _, d := range man.Drivers {
		for c := range d.Sites {
			counts[c]++
		}
	}
	for _, c := range []SiteClass{SitePlain, SiteComment, SiteMacroBody, SiteIfdefOn} {
		if counts[c] == 0 {
			t.Errorf("no drivers with site class %d", c)
		}
	}
	// The rare classes should exist at full scale; at 0.15 just log them.
	t.Logf("site class counts: %v", counts)
}
