package kernelgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"jmake/internal/fstree"
)

// InjectedMismatch is one seeded defect and the exact finding the audit
// must report for it. The JSON shape matches audit.Expectation (and
// audit.Finding), so a written manifest feeds jmake-lint -audit-verify
// directly. Line is 0 for Kconfig-level injections, whose findings are
// matched by category and symbol alone.
type InjectedMismatch struct {
	Category string `json:"category"`
	File     string `json:"file"`
	Line     int    `json:"line,omitempty"`
	Symbol   string `json:"symbol,omitempty"`
}

// Category names, mirroring the audit package (not imported, to keep the
// generator free of analysis dependencies).
const (
	injUndefinedRef  = "undefined-reference"
	injDeadSymbol    = "dead-symbol"
	injContradiction = "contradiction"
	injDeadCode      = "dead-code"
)

// sharedKconfig is where injected symbols are declared: the root and every
// architecture Kconfig source it, so the symbols exist in all valuations.
const sharedKconfig = "Kconfig.shared"

// InjectMismatches seeds n configuration mismatches into a generated tree,
// rotating through the four audit categories, and returns the ground-truth
// manifest. Injections are self-contained: every injected defect uses fresh
// INJ_* symbols (declared helpers are plain bools), so each one yields
// exactly one audit finding and a clean tree plus manifest verifies with
// 100% recall and zero extras. Equal seeds on equal trees inject
// identically.
func InjectMismatches(t *fstree.Tree, seed int64, n int) ([]InjectedMismatch, error) {
	if n <= 0 {
		return nil, nil
	}
	if !t.Exists(sharedKconfig) {
		return nil, fmt.Errorf("inject: tree has no %s (not a kernelgen tree?)", sharedKconfig)
	}
	var cFiles, makefiles []string
	for _, path := range t.Paths() {
		if strings.HasPrefix(path, "arch/") || strings.HasPrefix(path, "Documentation/") ||
			strings.HasPrefix(path, "tools/") || strings.HasPrefix(path, "scripts/") {
			continue
		}
		switch {
		case strings.HasSuffix(path, ".c"):
			cFiles = append(cFiles, path)
		case path != "Makefile" && strings.HasSuffix(path, "/Makefile"):
			makefiles = append(makefiles, path)
		}
	}
	sort.Strings(cFiles)
	sort.Strings(makefiles)
	if len(cFiles) == 0 || len(makefiles) == 0 {
		return nil, fmt.Errorf("inject: tree has no injectable .c files or Makefiles")
	}

	rng := rand.New(rand.NewSource(seed))
	var out []InjectedMismatch
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			sym := fmt.Sprintf("INJ_UNDEF_%d", i)
			if (i/4)%2 == 0 {
				// A Kbuild gate over a symbol no Kconfig file declares.
				mk := pick(rng, makefiles)
				line := appendLines(t, mk, fmt.Sprintf("obj-$(CONFIG_%s) += inj_undef_%d.o\n", sym, i))
				out = append(out, InjectedMismatch{Category: injUndefinedRef, File: mk, Line: line, Symbol: sym})
			} else {
				// A preprocessor conditional over an undeclared symbol; the
				// finding anchors at the first governed line, one past the
				// (unconditional) directive line.
				cf := pick(rng, cFiles)
				line := appendLines(t, cf,
					fmt.Sprintf("#ifdef CONFIG_%s\nint inj_undef_%d;\n#endif\n", sym, i)) + 1
				out = append(out, InjectedMismatch{Category: injUndefinedRef, File: cf, Line: line, Symbol: sym})
			}
		case 1:
			// A symbol whose own depends-on clause is unsatisfiable.
			sym := fmt.Sprintf("INJ_DEAD_%d", i)
			appendLines(t, sharedKconfig, fmt.Sprintf(
				"\nconfig %s_A\n\tbool \"injected helper %d\"\n\nconfig %s\n\tbool \"injected dead option %d\"\n\tdepends on %s_A && !%s_A\n",
				sym, i, sym, i, sym, sym))
			out = append(out, InjectedMismatch{Category: injDeadSymbol, File: sharedKconfig, Symbol: sym})
		case 2:
			// A contradictory depends-on chain: each link is locally
			// satisfiable, but enabling the symbol forces its own negation.
			sym := fmt.Sprintf("INJ_CHAIN_%d", i)
			appendLines(t, sharedKconfig, fmt.Sprintf(
				"\nconfig %s\n\tbool \"injected chain head %d\"\n\tdepends on %s_B\n\nconfig %s_B\n\tbool \"injected chain link %d\"\n\tdepends on !%s\n",
				sym, i, sym, sym, i, sym))
			out = append(out, InjectedMismatch{Category: injContradiction, File: sharedKconfig, Symbol: sym})
		case 3:
			// A block dead in every architecture although both symbols are
			// alive: the #if demands B without A, but Kconfig makes B imply
			// A. The audit names the block by its alphabetically first
			// symbol.
			base := fmt.Sprintf("INJ_DC_%d", i)
			appendLines(t, sharedKconfig, fmt.Sprintf(
				"\nconfig %s_A\n\tbool \"injected dc base %d\"\n\nconfig %s_B\n\tbool \"injected dc dependent %d\"\n\tdepends on %s_A\n",
				base, i, base, i, base))
			cf := pick(rng, cFiles)
			line := appendLines(t, cf, fmt.Sprintf(
				"#if defined(CONFIG_%s_B) && !defined(CONFIG_%s_A)\nint inj_dc_%d;\n#endif\n",
				base, base, i)) + 1
			out = append(out, InjectedMismatch{Category: injDeadCode, File: cf, Line: line, Symbol: base + "_A"})
		}
	}
	return out, nil
}

// appendLines appends text to the file and returns the line number of the
// first appended line.
func appendLines(t *fstree.Tree, path string, text string) int {
	content, err := t.Read(path)
	if err != nil {
		content = ""
	}
	first := strings.Count(content, "\n") + 1
	if len(content) > 0 && !strings.HasSuffix(content, "\n") {
		content += "\n"
		first++
	}
	t.Write(path, content+text)
	return first
}
