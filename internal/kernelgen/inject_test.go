package kernelgen

import (
	"testing"

	"jmake/internal/audit"
)

func baselineSet(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// TestAuditCleanTree is the zero-false-positive half of the audit's ground
// truth: a freshly generated tree, with the manifest's intentional
// escape-class symbols suppressed, must audit to zero findings.
func TestAuditCleanTree(t *testing.T) {
	tree, man, err := Generate(Params{Seed: 11, Scale: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	if len(man.AuditBaseline) == 0 {
		t.Fatal("manifest has no audit baseline symbols")
	}
	rep, err := audit.Run(audit.Params{Tree: tree, Ignore: baselineSet(man.AuditBaseline)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("clean tree has %d findings:\n%s", len(rep.Findings), rep.Text())
	}
	if rep.Suppressed == 0 {
		t.Error("expected baseline suppressions on a generated tree")
	}
}

// TestAuditWithoutBaseline documents that the suppressions are real: the
// same tree audited without the baseline reports the escape-class fixtures.
func TestAuditWithoutBaseline(t *testing.T) {
	tree, _, err := Generate(Params{Seed: 11, Scale: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := audit.Run(audit.Params{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("expected findings on an unsuppressed generated tree")
	}
}

// TestInjectMismatchesGroundTruth is the recall half: every injected
// mismatch must be found, with nothing extra, across all four categories.
func TestInjectMismatchesGroundTruth(t *testing.T) {
	tree, man, err := Generate(Params{Seed: 11, Scale: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := InjectMismatches(tree, 42, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj) != 10 {
		t.Fatalf("injected %d mismatches, want 10", len(inj))
	}
	cats := make(map[string]int)
	for _, m := range inj {
		cats[m.Category]++
	}
	for _, c := range audit.Categories {
		if cats[string(c)] == 0 {
			t.Errorf("no injection in category %s", c)
		}
	}

	rep, err := audit.Run(audit.Params{Tree: tree, Ignore: baselineSet(man.AuditBaseline)})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]audit.Expectation, len(inj))
	for i, m := range inj {
		want[i] = audit.Expectation{
			Category: audit.Category(m.Category),
			File:     m.File,
			Line:     m.Line,
			Symbol:   m.Symbol,
		}
	}
	missing, extra := audit.Verify(rep, want)
	for _, e := range missing {
		t.Errorf("injected mismatch not found: %s", e)
	}
	for _, f := range extra {
		t.Errorf("finding beyond ground truth: %+v", f)
	}
	if t.Failed() {
		t.Logf("report:\n%s", rep.Text())
	}
}

// TestInjectDeterministic checks equal seeds inject identically.
func TestInjectDeterministic(t *testing.T) {
	var manifests [2][]InjectedMismatch
	for k := 0; k < 2; k++ {
		tree, _, err := Generate(Params{Seed: 11, Scale: 0.12})
		if err != nil {
			t.Fatal(err)
		}
		inj, err := InjectMismatches(tree, 7, 8)
		if err != nil {
			t.Fatal(err)
		}
		manifests[k] = inj
	}
	if len(manifests[0]) != len(manifests[1]) {
		t.Fatalf("lengths differ: %d vs %d", len(manifests[0]), len(manifests[1]))
	}
	for i := range manifests[0] {
		if manifests[0][i] != manifests[1][i] {
			t.Errorf("injection %d differs: %+v vs %+v", i, manifests[0][i], manifests[1][i])
		}
	}
}
