package kernelgen

// subsysSpec statically describes one driver-hosting subsystem: its
// directory, Kconfig gate, API header with the functions and macros that
// header exports, and its mailing list. Driver generation draws calls and
// macro uses from these tables, which keeps every generated file compilable
// (all called functions are declared by an included header).
type subsysSpec struct {
	Dir       string
	Name      string
	ConfigVar string
	Header    string // include/linux/<Header>
	Struct    string
	Funcs     []string
	Macros    []string // object-like, defined to small constants
	List      string
	Drivers   int // base driver count at scale 1.0
}

// subsystems is the static subsystem table. Function names follow real
// kernel conventions so the generated tree reads like the genuine article.
var subsystems = []subsysSpec{
	{
		Dir: "drivers/net", Name: "NETWORKING DRIVERS", ConfigVar: "NETDEVICES",
		Header: "netdevice.h", Struct: "net_device",
		Funcs: []string{"alloc_netdev", "register_netdev", "unregister_netdev",
			"netif_start_queue", "netif_stop_queue", "netif_carrier_on",
			"netif_carrier_off", "netdev_priv", "eth_type_trans"},
		Macros: []string{"NETIF_F_SG", "NETIF_F_IP_CSUM", "NETDEV_TX_OK"},
		List:   "netdev@vger.example.org", Drivers: 60,
	},
	{
		Dir: "drivers/usb", Name: "USB SUBSYSTEM", ConfigVar: "USB_SUPPORT",
		Header: "usb.h", Struct: "usb_device",
		Funcs: []string{"usb_register_driver", "usb_deregister", "usb_get_dev",
			"usb_put_dev", "usb_control_msg", "usb_submit_urb", "usb_alloc_urb",
			"usb_free_urb", "usb_set_intfdata"},
		Macros: []string{"USB_DIR_IN", "USB_DIR_OUT", "USB_TYPE_VENDOR"},
		List:   "linux-usb@vger.example.org", Drivers: 45,
	},
	{
		Dir: "drivers/gpu", Name: "DRM DRIVERS", ConfigVar: "DRM",
		Header: "drm_core.h", Struct: "drm_device",
		Funcs: []string{"drm_dev_alloc", "drm_dev_register", "drm_dev_unregister",
			"drm_mode_config_init", "drm_crtc_init", "drm_connector_attach"},
		Macros: []string{"DRM_MODE_DPMS_ON", "DRM_MODE_DPMS_OFF"},
		List:   "dri-devel@lists.example.org", Drivers: 30,
	},
	{
		Dir: "drivers/staging", Name: "STAGING SUBSYSTEM", ConfigVar: "STAGING",
		Header: "staging_core.h", Struct: "staging_dev",
		Funcs: []string{"staging_register", "staging_unregister", "comedi_alloc_devpriv",
			"comedi_alloc_subdevices", "comedi_event"},
		Macros: []string{"COMEDI_CB_EOA", "COMEDI_CB_BLOCK"},
		List:   "devel@driverdev.example.org", Drivers: 150,
	},
	{
		Dir: "drivers/clk", Name: "COMMON CLK FRAMEWORK", ConfigVar: "COMMON_CLK",
		Header: "clk-provider.h", Struct: "clk_hw",
		Funcs: []string{"clk_register", "clk_unregister", "clk_prepare_enable",
			"clk_disable_unprepare", "clk_get_rate", "clk_set_rate"},
		Macros: []string{"CLK_SET_RATE_PARENT", "CLK_IGNORE_UNUSED"},
		List:   "linux-clk@vger.example.org", Drivers: 25,
	},
	{
		Dir: "drivers/scsi", Name: "SCSI SUBSYSTEM", ConfigVar: "SCSI",
		Header: "scsi_host.h", Struct: "Scsi_Host",
		Funcs: []string{"scsi_host_alloc", "scsi_add_host", "scsi_remove_host",
			"scsi_host_put", "scsi_device_lookup", "scsi_scan_host"},
		Macros: []string{"SCSI_MLQUEUE_HOST_BUSY", "DID_ERROR"},
		List:   "linux-scsi@vger.example.org", Drivers: 30,
	},
	{
		Dir: "drivers/input", Name: "INPUT SUBSYSTEM", ConfigVar: "INPUT",
		Header: "input_core.h", Struct: "input_dev",
		Funcs: []string{"input_allocate_device", "input_register_device",
			"input_unregister_device", "input_report_key", "input_report_abs",
			"input_sync", "input_set_drvdata"},
		Macros: []string{"EV_KEY", "EV_ABS", "BTN_TOUCH"},
		List:   "linux-input@vger.example.org", Drivers: 30,
	},
	{
		Dir: "drivers/char", Name: "CHARACTER DEVICE DRIVERS", ConfigVar: "CHAR_DEV",
		Header: "cdev.h", Struct: "cdev",
		Funcs: []string{"cdev_init", "cdev_add", "cdev_del",
			"register_chrdev_region", "unregister_chrdev_region"},
		Macros: []string{"MINORBITS", "MINORMASK"},
		List:   "linux-kernel@vger.example.org", Drivers: 20,
	},
	{
		Dir: "drivers/i2c", Name: "I2C SUBSYSTEM", ConfigVar: "I2C",
		Header: "i2c_core.h", Struct: "i2c_client",
		Funcs: []string{"i2c_add_adapter", "i2c_del_adapter", "i2c_transfer",
			"i2c_smbus_read_byte", "i2c_smbus_write_byte", "i2c_set_clientdata"},
		Macros: []string{"I2C_M_RD", "I2C_FUNC_I2C"},
		List:   "linux-i2c@vger.example.org", Drivers: 30,
	},
	{
		Dir: "drivers/spi", Name: "SPI SUBSYSTEM", ConfigVar: "SPI",
		Header: "spi_core.h", Struct: "spi_device",
		Funcs: []string{"spi_register_master", "spi_unregister_master",
			"spi_sync", "spi_write_then_read", "spi_setup"},
		Macros: []string{"SPI_CPHA", "SPI_CPOL", "SPI_MODE_0"},
		List:   "linux-spi@vger.example.org", Drivers: 22,
	},
	{
		Dir: "drivers/gpio", Name: "GPIO SUBSYSTEM", ConfigVar: "GPIOLIB",
		Header: "gpio_driver.h", Struct: "gpio_chip",
		Funcs: []string{"gpiochip_add", "gpiochip_remove", "gpiod_get_value",
			"gpiod_set_value", "gpiod_direction_input", "gpiod_direction_output"},
		Macros: []string{"GPIOF_DIR_IN", "GPIOF_DIR_OUT"},
		List:   "linux-gpio@vger.example.org", Drivers: 22,
	},
	{
		Dir: "drivers/media", Name: "MEDIA INPUT INFRASTRUCTURE", ConfigVar: "MEDIA_SUPPORT",
		Header: "v4l2_core.h", Struct: "video_device",
		Funcs: []string{"video_register_device", "video_unregister_device",
			"v4l2_device_register", "v4l2_device_unregister", "vb2_queue_init"},
		Macros: []string{"V4L2_CAP_VIDEO_CAPTURE", "V4L2_CAP_STREAMING"},
		List:   "linux-media@vger.example.org", Drivers: 35,
	},
	{
		Dir: "drivers/mmc", Name: "MMC SUBSYSTEM", ConfigVar: "MMC",
		Header: "mmc_host.h", Struct: "mmc_host",
		Funcs: []string{"mmc_alloc_host", "mmc_add_host", "mmc_remove_host",
			"mmc_free_host", "mmc_request_done", "mmc_detect_change"},
		Macros: []string{"MMC_CAP_4_BIT_DATA", "MMC_CAP_SD_HIGHSPEED"},
		List:   "linux-mmc@vger.example.org", Drivers: 18,
	},
	{
		Dir: "drivers/mtd", Name: "MTD SUBSYSTEM", ConfigVar: "MTD",
		Header: "mtd_core.h", Struct: "mtd_info",
		Funcs: []string{"mtd_device_register", "mtd_device_unregister",
			"mtd_read", "mtd_write", "mtd_erase"},
		Macros: []string{"MTD_WRITEABLE", "MTD_NO_ERASE"},
		List:   "linux-mtd@lists.example.org", Drivers: 18,
	},
	{
		Dir: "drivers/pci", Name: "PCI SUBSYSTEM", ConfigVar: "PCI",
		Header: "pci_core.h", Struct: "pci_dev",
		Funcs: []string{"pci_enable_device", "pci_disable_device",
			"pci_register_driver", "pci_unregister_driver", "pci_set_drvdata",
			"pci_request_regions", "pci_release_regions"},
		Macros: []string{"PCI_VENDOR_ID_INTEL", "PCI_ANY_ID"},
		List:   "linux-pci@vger.example.org", Drivers: 15,
	},
	{
		Dir: "drivers/rtc", Name: "REAL TIME CLOCK (RTC) SUBSYSTEM", ConfigVar: "RTC_CLASS",
		Header: "rtc_core.h", Struct: "rtc_device",
		Funcs: []string{"rtc_device_register", "rtc_device_unregister",
			"rtc_update_irq", "rtc_tm_to_time", "rtc_valid_tm"},
		Macros: []string{"RTC_IRQF", "RTC_AF", "RTC_UF"},
		List:   "rtc-linux@googlegroups.example.org", Drivers: 18,
	},
	{
		Dir: "drivers/watchdog", Name: "WATCHDOG DEVICE DRIVERS", ConfigVar: "WATCHDOG",
		Header: "watchdog_core.h", Struct: "watchdog_device",
		Funcs: []string{"watchdog_register_device", "watchdog_unregister_device",
			"watchdog_init_timeout", "watchdog_set_drvdata"},
		Macros: []string{"WDIOF_SETTIMEOUT", "WDIOF_KEEPALIVEPING"},
		List:   "linux-watchdog@vger.example.org", Drivers: 15,
	},
	{
		Dir: "drivers/hwmon", Name: "HARDWARE MONITORING", ConfigVar: "HWMON",
		Header: "hwmon_core.h", Struct: "hwmon_device",
		Funcs: []string{"hwmon_device_register", "hwmon_device_unregister",
			"hwmon_notify_event"},
		Macros: []string{"HWMON_T_INPUT", "HWMON_T_MAX"},
		List:   "linux-hwmon@vger.example.org", Drivers: 15,
	},
	{
		Dir: "fs/ext4", Name: "EXT4 FILE SYSTEM", ConfigVar: "EXT4_FS",
		Header: "ext4_jbd.h", Struct: "ext4_inode_info",
		Funcs: []string{"ext4_journal_start", "ext4_journal_stop",
			"ext4_mark_inode_dirty", "ext4_bread", "ext4_get_block"},
		Macros: []string{"EXT4_MIN_BLOCK_SIZE", "EXT4_NDIR_BLOCKS"},
		List:   "linux-ext4@vger.example.org", Drivers: 10,
	},
	{
		Dir: "fs/proc", Name: "PROC FILESYSTEM", ConfigVar: "PROC_FS",
		Header: "proc_fs_core.h", Struct: "proc_dir_entry",
		Funcs: []string{"proc_create", "proc_remove", "proc_mkdir",
			"seq_printf", "seq_puts", "single_open"},
		Macros: []string{"PROC_BLOCK_SIZE"},
		List:   "linux-fsdevel@vger.example.org", Drivers: 8,
	},
	{
		Dir: "fs/nfs", Name: "NFS CLIENT", ConfigVar: "NFS_FS",
		Header: "nfs_fs_core.h", Struct: "nfs_server",
		Funcs: []string{"nfs_create_server", "nfs_free_server",
			"rpc_call_sync", "rpc_call_async", "nfs_revalidate_inode"},
		Macros: []string{"NFS_MAX_TCP_TIMEOUT", "NFS_DEF_ACREGMIN"},
		List:   "linux-nfs@vger.example.org", Drivers: 8,
	},
	{
		Dir: "net/core", Name: "NETWORKING [GENERAL]", ConfigVar: "NET",
		Header: "skbuff.h", Struct: "sk_buff",
		Funcs: []string{"alloc_skb", "kfree_skb", "skb_put", "skb_pull",
			"skb_push", "skb_reserve", "skb_clone", "dev_queue_xmit"},
		Macros: []string{"MAX_SKB_FRAGS", "SKB_DATA_ALIGN_FACTOR"},
		List:   "netdev@vger.example.org", Drivers: 12,
	},
	{
		Dir: "net/ipv4", Name: "NETWORKING [IPv4/IPv6]", ConfigVar: "INET",
		Header: "ip_core.h", Struct: "inet_sock",
		Funcs: []string{"ip_route_output", "ip_local_out", "inet_register_protosw",
			"inet_unregister_protosw", "ip_send_check"},
		Macros: []string{"IPTOS_TOS_MASK", "IP_MAX_MTU"},
		List:   "netdev@vger.example.org", Drivers: 10,
	},
	{
		Dir: "net/sched", Name: "TC SUBSYSTEM", ConfigVar: "NET_SCHED",
		Header: "pkt_sched.h", Struct: "Qdisc",
		Funcs: []string{"qdisc_create_dflt", "qdisc_destroy", "qdisc_reset",
			"tcf_block_get", "tcf_block_put"},
		Macros: []string{"TC_H_ROOT", "TC_H_INGRESS"},
		List:   "netdev@vger.example.org", Drivers: 8,
	},
	{
		Dir: "kernel", Name: "SCHEDULER AND CORE KERNEL", ConfigVar: "KERNEL_CORE",
		Header: "sched_core.h", Struct: "task_struct_info",
		Funcs: []string{"schedule_work_on", "wake_up_process_sync",
			"set_task_state_safe", "kthread_create_worker"},
		Macros: []string{"MAX_PRIO_LEVELS", "MIN_NICE_LEVEL"},
		List:   "linux-kernel@vger.example.org", Drivers: 10,
	},
	{
		Dir: "mm", Name: "MEMORY MANAGEMENT", ConfigVar: "MMU_CORE",
		Header: "mm_core.h", Struct: "vm_area_info",
		Funcs: []string{"alloc_pages_node", "free_pages_node", "vmalloc_range",
			"vfree_range", "remap_pfn_range_safe"},
		Macros: []string{"GFP_KERNEL_FLAGS", "GFP_ATOMIC_FLAGS"},
		List:   "linux-mm@kvack.example.org", Drivers: 8,
	},
	{
		Dir: "lib", Name: "LIBRARY ROUTINES", ConfigVar: "LIB_CORE",
		Header: "lib_core.h", Struct: "rb_root_info",
		Funcs: []string{"bitmap_zero_ext", "bitmap_fill_ext", "crc32_compute",
			"sort_array", "bsearch_array"},
		Macros: []string{"BITS_PER_LONG_VAL", "BITMAP_LAST_WORD"},
		List:   "linux-kernel@vger.example.org", Drivers: 8,
	},
	{
		Dir: "block", Name: "BLOCK LAYER", ConfigVar: "BLOCK",
		Header: "blkdev_core.h", Struct: "request_queue",
		Funcs: []string{"blk_alloc_queue", "blk_cleanup_queue", "blk_queue_make_request",
			"bio_alloc_ext", "bio_endio_ext"},
		Macros: []string{"BLK_MAX_SEGMENTS", "BLK_SAFE_MAX_SECTORS"},
		List:   "linux-block@vger.example.org", Drivers: 8,
	},
	{
		Dir: "crypto", Name: "CRYPTO API", ConfigVar: "CRYPTO",
		Header: "crypto_core.h", Struct: "crypto_tfm",
		Funcs: []string{"crypto_register_alg", "crypto_unregister_alg",
			"crypto_alloc_tfm_ext", "crypto_free_tfm_ext"},
		Macros: []string{"CRYPTO_ALG_TYPE_CIPHER", "CRYPTO_MAX_ALG_NAME"},
		List:   "linux-crypto@vger.example.org", Drivers: 10,
	},
	{
		Dir: "sound/core", Name: "SOUND", ConfigVar: "SND",
		Header: "sound_core.h", Struct: "snd_card",
		Funcs: []string{"snd_card_new", "snd_card_register", "snd_card_free",
			"snd_pcm_new", "snd_ctl_add"},
		Macros: []string{"SNDRV_CARDS_LIMIT", "SNDRV_DEFAULT_IDX"},
		List:   "alsa-devel@alsa-project.example.org", Drivers: 12,
	},
	{
		Dir: "sound/pci", Name: "SOUND - PCI DRIVERS", ConfigVar: "SND_PCI",
		Header: "sound_pci.h", Struct: "snd_pci_chip",
		Funcs: []string{"snd_pci_chip_create", "snd_pci_chip_free",
			"snd_pci_interrupt_enable", "snd_pci_interrupt_disable"},
		Macros: []string{"SND_PCI_BUFFER_BYTES", "SND_PCI_PERIODS_MAX"},
		List:   "alsa-devel@alsa-project.example.org", Drivers: 12,
	},
	{
		Dir: "security", Name: "SECURITY SUBSYSTEM", ConfigVar: "SECURITY",
		Header: "security_core.h", Struct: "security_hook_info",
		Funcs: []string{"security_add_hooks_ext", "security_file_permission_ext",
			"security_capable_ext"},
		Macros: []string{"SECURITY_NAME_MAX_LEN"},
		List:   "linux-security-module@vger.example.org", Drivers: 6,
	},
}

// commonFuncs are declared by the always-included common headers and can be
// called from any file.
var commonFuncs = []string{
	"printk", "kmalloc", "kzalloc", "kfree", "kcalloc",
	"memcpy_safe", "memset_safe", "strlen_safe", "strcmp_safe",
	"msleep", "udelay", "request_irq", "free_irq",
	"spin_lock_init_ext", "spin_lock_ext", "spin_unlock_ext",
	"mutex_init_ext", "mutex_lock_ext", "mutex_unlock_ext",
}

// asmCommonFuncs are declared in every architecture's asm/io.h.
var asmCommonFuncs = []string{
	"readb", "readw", "readl", "writeb", "writew", "writel",
	"inb", "outb", "inw", "outw",
}

// workingArches are the 24 architectures the paper's make.cross could
// drive (§II-A footnote 3).
var workingArches = []string{
	"x86_64", "i386", "alpha", "arm", "avr32", "blackfin", "cris", "ia64",
	"m32r", "m68k", "microblaze", "mips", "mn10300", "openrisc", "parisc",
	"powerpc", "s390", "sh", "sparc", "sparc64", "tile", "tilegx", "um",
	"xtensa",
}

// brokenArches have no working cross-compiler (a subset of the paper's 10
// failing ones).
var brokenArches = []string{"arm64", "score"}

// setupOpsByArch pins the paper's reported set-up operation counts
// (§III-D: over 80 for x86, over 60 for arm); other architectures get a
// deterministic value in between from the generator.
var setupOpsByArch = map[string]int{
	"x86_64": 84,
	"i386":   82,
	"arm":    63,
}
