// Package kernelgen deterministically generates a miniature Linux-kernel-
// shaped source tree: 26 architecture directories (24 with working
// cross-compilers), Kconfig hierarchies, Kbuild Makefiles, subsystem API
// headers, driver sources with conditional-compilation structure,
// defconfigs, a MAINTAINERS file, and the Kbuild.meta manifest.
//
// The real kernel (13 MLoC) is not available offline; this generator is the
// substitution documented in DESIGN.md. Everything JMake exercises —
// preprocessing, configuration gating, per-arch headers, Makefile
// reachability — is generated for real and is self-consistent: the whole
// tree compiles under each architecture's allyesconfig.
package kernelgen

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"strings"

	"jmake/internal/fstree"
)

// SiteClass labels the kinds of editable sites a generated file contains.
// The commit generator samples a target class per edit and picks files
// whose manifest advertises it.
type SiteClass int

// Site classes. The escape classes map 1:1 to Table IV rows.
const (
	// SitePlain: ordinary statements and defines, compiled under any config.
	SitePlain SiteClass = iota + 1
	// SiteMacroBody: a multi-line function-like macro definition.
	SiteMacroBody
	// SiteComment: standalone comment lines.
	SiteComment
	// SiteIfdefOn: a block under #ifdef CONFIG_X with X=y under
	// allyesconfig (compiled; not an escape).
	SiteIfdefOn
	// SiteIfdefNotAllyes: block under a variable allyesconfig cannot set.
	SiteIfdefNotAllyes
	// SiteDefconfigOnly: like SiteIfdefNotAllyes, but a prepared defconfig
	// enables the variable (drives the 84% vs 85% comparison, §V-B).
	SiteDefconfigOnly
	// SiteIfdefNever: block under a variable no Kconfig declares.
	SiteIfdefNever
	// SiteIfdefModule: block under #ifdef MODULE.
	SiteIfdefModule
	// SiteIfndef: block under #ifndef CONFIG_X with X=y (or the #else of an
	// #ifdef).
	SiteIfndef
	// SiteBothBranches: an #ifdef/#else pair with editable lines in both.
	SiteBothBranches
	// SiteIfZero: block under #if 0.
	SiteIfZero
	// SiteUnusedMacro: a macro definition nothing expands.
	SiteUnusedMacro
	// SiteArchQuirk: block under a quirk variable declared (default y) in
	// one non-host architecture's Kconfig — escapes host allyesconfig but
	// is recovered by trying that architecture (§V-B: 54 of 415 instances).
	SiteArchQuirk
	// SiteHeaderPhantom: the driver's local header has a block under an
	// undeclared variable (a .h change there is never compiled, §V-B: 2%
	// of .h instances).
	SiteHeaderPhantom
)

// Driver describes one generated driver and its editable structure.
type Driver struct {
	Name       string
	Subsystem  int // index into Manifest.Subsystems
	ConfigVar  string
	CFile      string
	ExtraCFile string // second source file, or ""
	Header     string // local header, or ""
	// ArchBound names the only architecture this driver compiles for
	// ("" = portable). Its ConfigVar is declared in that arch's Kconfig.
	ArchBound string
	// QuirkArch is the architecture whose Kconfig declares this portable
	// driver's SiteArchQuirk variable.
	QuirkArch string
	// Sites lists the edit-site classes present in CFile.
	Sites map[SiteClass]bool
	// Maintainer and EntryName tie the driver to its MAINTAINERS entry.
	Maintainer string
	EntryName  string
	List       string
}

// Subsystem describes one generated subsystem.
type Subsystem struct {
	Dir       string
	Name      string
	ConfigVar string
	Header    string // full include/linux path
	List      string
	Funcs     []string
	Macros    []string
}

// Manifest records what was generated, for the commit generator and the
// evaluation harness.
type Manifest struct {
	Subsystems []Subsystem
	Drivers    []Driver
	// SetupFiles are the build-setup files JMake cannot treat (§V-D).
	SetupFiles []string
	// WholeBuildFile is the prom_init.c analogue (§V-C).
	WholeBuildFile string
	// DocFiles are Documentation/scripts/tools files (ignored by the
	// evaluation's path filter).
	DocFiles []string
	// CommonHeaders are widely included include/linux headers.
	CommonHeaders []string
	// ManyMacroFile is the clk-bcm2835 analogue: a file whose register
	// macros dominate it, needing 200+ mutations when bulk-edited (§V-B).
	ManyMacroFile string
	// WorkingArches and BrokenArches list the architecture split.
	WorkingArches []string
	BrokenArches  []string
	// AuditBaseline lists the symbols behind the tree's intentional
	// escape-class fixtures (undeclared phantom guards, dead legacy
	// options, never-true #ifndef bodies). The whole-tree audit suppresses
	// findings on these, so a freshly generated tree audits clean and any
	// injected mismatch stands out alone. Sorted, deduplicated.
	AuditBaseline []string
}

// Params configure generation.
type Params struct {
	// Seed drives all randomness; equal seeds give identical trees.
	Seed int64
	// Scale multiplies driver counts (1.0 ≈ 900 driver files).
	Scale float64
}

func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 1.0
	}
	return p
}

// Generate builds the tree and its manifest.
func Generate(p Params) (*fstree.Tree, *Manifest, error) {
	p = p.withDefaults()
	g := &generator{
		tree: fstree.New(),
		man: &Manifest{
			WorkingArches: append([]string(nil), workingArches...),
			BrokenArches:  append([]string(nil), brokenArches...),
		},
		rng:   rand.New(rand.NewSource(p.Seed)),
		scale: p.Scale,
	}
	g.commonHeaders()
	g.arches()
	g.subsystemsAndDrivers()
	g.manyMacroFile()
	g.rootFiles()
	g.docTree()
	g.maintainersFile()
	g.metaFile()
	if err := g.err; err != nil {
		return nil, nil, err
	}
	sort.Strings(g.man.AuditBaseline)
	g.man.AuditBaseline = slices.Compact(g.man.AuditBaseline)
	return g.tree, g.man, nil
}

type generator struct {
	tree  *fstree.Tree
	man   *Manifest
	rng   *rand.Rand
	scale float64
	err   error

	// archDriverKconfig accumulates per-arch Kconfig sections for
	// arch-bound drivers.
	archDriverKconfig map[string][]string
	// defconfigExtras accumulates CONFIG lines for the special defconfigs
	// that recover SiteDefconfigOnly regions.
	defconfigExtras map[string][]string
	// subsysKconfigs accumulates the per-subsystem Kconfig bodies.
	subsysKconfigs []string
}

// pick returns a deterministic pseudo-random element of xs.
func pick[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}

// rootFiles writes the root Makefile and Kconfig plumbing.
func (g *generator) rootFiles() {
	g.tree.Write("Makefile", `# Kernel build entry point.
obj-y += arch/$(SRCARCH)/
obj-y += kernel/ mm/ lib/ block/ crypto/ security/
obj-y += drivers/ fs/ net/ sound/
`)
	g.tree.Write("Kconfig", "source \"Kconfig.shared\"\n")
	var b strings.Builder
	b.WriteString("# Shared configuration, sourced by every architecture.\n")
	b.WriteString("config MAINSTREAM\n\tbool \"Mainstream feature set\"\n\tdefault y\n\n")
	b.WriteString("config COMPILE_TEST\n\tbool \"Compile-test drivers for other platforms\"\n\tdefault y\n\n")
	// A choice group: allyesconfig is forced to pick one member, so code
	// under the others is excluded even by the most permissive standard
	// configuration (paper §VI's observation about allyesconfig coverage).
	b.WriteString(`choice
	bool "Default I/O scheduler"
	default IOSCHED_CFQ

config IOSCHED_CFQ
	bool "CFQ"

config IOSCHED_DEADLINE
	bool "Deadline"

config IOSCHED_NOOP
	bool "No-op"

endchoice

`)
	for _, dir := range subsysKconfigDirs() {
		fmt.Fprintf(&b, "source %q\n", dir+"/Kconfig")
	}
	g.tree.Write("Kconfig.shared", b.String())

	// Top-level directory Makefiles that only descend.
	for _, top := range []struct{ dir, subs string }{
		{"drivers", driversSubdirLine()},
		{"fs", "obj-$(CONFIG_EXT4_FS) += ext4/\nobj-$(CONFIG_PROC_FS) += proc/\nobj-$(CONFIG_NFS_FS) += nfs/\n"},
		{"net", "obj-$(CONFIG_NET) += core/\nobj-$(CONFIG_INET) += ipv4/\nobj-$(CONFIG_NET_SCHED) += sched/\n"},
		{"sound", "obj-$(CONFIG_SND) += core/\nobj-$(CONFIG_SND_PCI) += pci/\n"},
	} {
		g.tree.Write(top.dir+"/Makefile", top.subs)
	}
}

// subsysKconfigDirs returns the directories holding subsystem Kconfigs, in
// table order, deduplicated by top directory where needed.
func subsysKconfigDirs() []string {
	var out []string
	for _, s := range subsystems {
		out = append(out, s.Dir)
	}
	return out
}

// driversSubdirLine builds the drivers/Makefile descent rules.
func driversSubdirLine() string {
	var b strings.Builder
	for _, s := range subsystems {
		if !strings.HasPrefix(s.Dir, "drivers/") {
			continue
		}
		sub := strings.TrimPrefix(s.Dir, "drivers/")
		fmt.Fprintf(&b, "obj-$(CONFIG_%s) += %s/\n", s.ConfigVar, sub)
	}
	return b.String()
}

// manyMacroFile writes the clk-bcm2835 analogue: a clock driver whose body
// is dominated by register-offset macro definitions. A commit rewriting
// its register map needs one mutation per changed macro — the paper's 200+
// mutation outlier (§V-B, commit 41691b8 touching drivers/clk/bcm/
// clk-bcm2835.c).
func (g *generator) manyMacroFile() {
	const n = 230
	var b strings.Builder
	b.WriteString(`/*
 * clk-bcmring - clock driver with a very large register map.
 */
#include <linux/kernel.h>
#include <linux/io.h>
#include <linux/clk-provider.h>

`)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "#define CM_REG_%03d 0x%03x\n", i, 4*i)
	}
	b.WriteString(`
static unsigned int cm_read(int idx)
{
	return readl(CM_REG_000 + idx);
}

int bcmring_clk_probe(void)
{
	unsigned int v = cm_read(CM_REG_001);
	clk_register();
	if (v == 0)
		return -1;
	writel(v, CM_REG_002);
	return 0;
}
`)
	g.tree.Write("drivers/clk/clk-bcmring.c", b.String())
	g.man.ManyMacroFile = "drivers/clk/clk-bcmring.c"
	// Register it in the clk Makefile and Kconfig by appending.
	mk, _ := g.tree.Read("drivers/clk/Makefile")
	g.tree.Write("drivers/clk/Makefile", mk+"obj-$(CONFIG_CLK_BCMRING) += clk-bcmring.o\n")
	kc, _ := g.tree.Read("drivers/clk/Kconfig")
	g.tree.Write("drivers/clk/Kconfig", kc+"config CLK_BCMRING\n\ttristate \"BCM ring clock\"\n\tdepends on COMMON_CLK\n")
}

// docTree generates Documentation/, scripts/ and tools/ content for the
// commits the evaluation filters out (paper §V-A: 2,099 of 12,946).
func (g *generator) docTree() {
	// Documentation is a large absorber pool: janitors' long-tail history
	// patches land here without inflating their MAINTAINERS subsystem
	// counts (no F: patterns cover Documentation).
	nDocs := int(450*g.scale + 0.5)
	if nDocs < 40 {
		nDocs = 40
	}
	for i := 0; i < nDocs; i++ {
		p := fmt.Sprintf("Documentation/%s/%s.txt", pick(g.rng, []string{
			"networking", "usb", "filesystems", "driver-api", "admin-guide",
			"power", "sound", "gpio", "i2c"}), fmt.Sprintf("doc%02d", i))
		g.tree.Write(p, fmt.Sprintf("Subsystem notes %d\n==================\n\nSee the source for details.\nRevision %d.\n", i, i))
		g.man.DocFiles = append(g.man.DocFiles, p)
	}
	for i := 0; i < 12; i++ {
		p := fmt.Sprintf("scripts/checks/rule%02d.sh", i)
		g.tree.Write(p, fmt.Sprintf("#!/bin/sh\n# style rule %d\nexit 0\n", i))
		g.man.DocFiles = append(g.man.DocFiles, p)
	}
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("tools/testing/case%02d.c", i)
		g.tree.Write(p, fmt.Sprintf("int main(void)\n{\n\treturn %d;\n}\n", i))
		g.man.DocFiles = append(g.man.DocFiles, p)
	}
}

// metaFile emits Kbuild.meta: set-up op counts, broken architectures, the
// whole-kernel-build file and the build-setup files.
func (g *generator) metaFile() {
	var b strings.Builder
	b.WriteString("# Build metadata consumed by kbuild.\n")
	for _, a := range workingArches {
		ops, ok := setupOpsByArch[a]
		if !ok {
			sum := 0
			for i := 0; i < len(a); i++ {
				sum += int(a[i])
			}
			ops = 58 + sum%20
		}
		fmt.Fprintf(&b, "setupops %s %d\n", a, ops)
	}
	for _, a := range brokenArches {
		fmt.Fprintf(&b, "brokenarch %s\n", a)
	}
	fmt.Fprintf(&b, "wholebuild %s\n", g.man.WholeBuildFile)
	for _, f := range g.man.SetupFiles {
		fmt.Fprintf(&b, "setupfile %s\n", f)
	}
	g.tree.Write("Kbuild.meta", b.String())
}
