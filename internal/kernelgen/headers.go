package kernelgen

import (
	"fmt"
	"strings"
)

// commonHeaders writes the include/linux headers that every driver can
// rely on. Two of them (compiler.h, kconfig.h) take part in the build's
// own set-up compilation and are therefore registered as JMake-untreatable
// setup files (paper §V-D).
func (g *generator) commonHeaders() {
	w := func(p, content string) {
		g.tree.Write(p, content)
		g.man.CommonHeaders = append(g.man.CommonHeaders, p)
	}

	w("include/linux/types.h", `#ifndef _LINUX_TYPES_H
#define _LINUX_TYPES_H

typedef unsigned char u8;
typedef unsigned short u16;
typedef unsigned int u32;
typedef unsigned long long u64;
typedef signed char s8;
typedef signed short s16;
typedef signed int s32;
typedef signed long long s64;
typedef unsigned long size_t_k;
typedef int bool_k;

#endif /* _LINUX_TYPES_H */
`)
	w("include/linux/compiler.h", `#ifndef _LINUX_COMPILER_H
#define _LINUX_COMPILER_H

#define __force
#define __user
#define __iomem
#define likely(x) (x)
#define unlikely(x) (x)
#define barrier_compiler() do { } while (0)

#endif /* _LINUX_COMPILER_H */
`)
	w("include/linux/kconfig.h", `#ifndef _LINUX_KCONFIG_H
#define _LINUX_KCONFIG_H

#define IS_BUILTIN(option) defined_builtin_##option
#define IS_ENABLED(option) (1)

#endif /* _LINUX_KCONFIG_H */
`)
	w("include/linux/errno.h", `#ifndef _LINUX_ERRNO_H
#define _LINUX_ERRNO_H

#define EPERM 1
#define EIO 5
#define ENOMEM 12
#define EBUSY 16
#define ENODEV 19
#define EINVAL 22
#define ENOSPC 28
#define ETIMEDOUT 110

#endif /* _LINUX_ERRNO_H */
`)
	w("include/linux/kernel.h", `#ifndef _LINUX_KERNEL_H
#define _LINUX_KERNEL_H

#include <linux/types.h>
#include <linux/compiler.h>
#include <linux/kconfig.h>

extern int printk(const char *fmt, ...);
extern void panic(const char *fmt, ...);
extern int sprintf_k(char *buf, const char *fmt, ...);
extern int snprintf_k(char *buf, unsigned long size, const char *fmt, ...);

#define ARRAY_SIZE(arr) (sizeof(arr) / sizeof((arr)[0]))
#define min_t(t, a, b) ((a) < (b) ? (a) : (b))
#define max_t(t, a, b) ((a) > (b) ? (a) : (b))
#define clamp_val(v, lo, hi) min_t(int, max_t(int, v, lo), hi)

#define pr_info(fmt, ...) printk(fmt, ##__VA_ARGS__)
#define pr_err(fmt, ...) printk(fmt, ##__VA_ARGS__)
#define pr_warn(fmt, ...) printk(fmt, ##__VA_ARGS__)
#define pr_debug(fmt, ...) printk(fmt, ##__VA_ARGS__)

#endif /* _LINUX_KERNEL_H */
`)
	w("include/linux/slab.h", `#ifndef _LINUX_SLAB_H
#define _LINUX_SLAB_H

#include <linux/types.h>

extern void *kmalloc(unsigned long size, int flags);
extern void *kzalloc(unsigned long size, int flags);
extern void *kcalloc(unsigned long n, unsigned long size, int flags);
extern void kfree(void *ptr);

#define GFP_KERNEL 0x01
#define GFP_ATOMIC 0x02

#endif /* _LINUX_SLAB_H */
`)
	w("include/linux/module.h", `#ifndef _LINUX_MODULE_H
#define _LINUX_MODULE_H

#define MODULE_LICENSE(x)
#define MODULE_AUTHOR(x)
#define MODULE_DESCRIPTION(x)
#define MODULE_DEVICE_TABLE(type, name)
#define module_init(fn)
#define module_exit(fn)

#ifdef MODULE
#define THIS_MODULE_NAME "module"
#else
#define THIS_MODULE_NAME "builtin"
#endif

#endif /* _LINUX_MODULE_H */
`)
	w("include/linux/string.h", `#ifndef _LINUX_STRING_H
#define _LINUX_STRING_H

extern void *memcpy_safe(void *dst, const void *src, unsigned long n);
extern void *memset_safe(void *s, int c, unsigned long n);
extern unsigned long strlen_safe(const char *s);
extern int strcmp_safe(const char *a, const char *b);

#endif /* _LINUX_STRING_H */
`)
	w("include/linux/delay.h", `#ifndef _LINUX_DELAY_H
#define _LINUX_DELAY_H

extern void msleep(unsigned int msecs);
extern void udelay(unsigned long usecs);

#endif /* _LINUX_DELAY_H */
`)
	w("include/linux/interrupt.h", `#ifndef _LINUX_INTERRUPT_H
#define _LINUX_INTERRUPT_H

extern int request_irq(unsigned int irq, void *handler, unsigned long flags,
			const char *name, void *dev);
extern void free_irq(unsigned int irq, void *dev);

#define IRQF_SHARED 0x80

#endif /* _LINUX_INTERRUPT_H */
`)
	w("include/linux/spinlock.h", `#ifndef _LINUX_SPINLOCK_H
#define _LINUX_SPINLOCK_H

typedef struct {
	int raw;
} spinlock_ext_t;

extern void spin_lock_init_ext(spinlock_ext_t *lock);
extern void spin_lock_ext(spinlock_ext_t *lock);
extern void spin_unlock_ext(spinlock_ext_t *lock);

#endif /* _LINUX_SPINLOCK_H */
`)
	w("include/linux/mutex.h", `#ifndef _LINUX_MUTEX_H
#define _LINUX_MUTEX_H

struct mutex_ext {
	int owner;
};

extern void mutex_init_ext(struct mutex_ext *m);
extern void mutex_lock_ext(struct mutex_ext *m);
extern void mutex_unlock_ext(struct mutex_ext *m);

#endif /* _LINUX_MUTEX_H */
`)
	w("include/linux/io.h", `#ifndef _LINUX_IO_H
#define _LINUX_IO_H

#include <asm/io.h>

#endif /* _LINUX_IO_H */
`)
	w("include/linux/init.h", `#ifndef _LINUX_INIT_H
#define _LINUX_INIT_H

#define __init
#define __exit
#define __initdata

#endif /* _LINUX_INIT_H */
`)
	// kernel/bounds.c is compiled during build set-up to generate constant
	// headers (as in the real kernel); JMake cannot mutate it either.
	g.tree.Write("kernel/bounds.c", `/*
 * Generate assembler bounds consumed by the build itself.
 */
#include <linux/types.h>

#define DEFINE_BOUND(sym, val) const int bound_##sym = val;

DEFINE_BOUND(NR_PAGEFLAGS, 24)
DEFINE_BOUND(MAX_NR_ZONES, 4)
DEFINE_BOUND(NR_CPUS_BITS, 8)
`)
	g.man.SetupFiles = append(g.man.SetupFiles,
		"include/linux/compiler.h", "include/linux/kconfig.h", "kernel/bounds.c")
}

// subsystemHeader writes the API header of one subsystem.
func (g *generator) subsystemHeader(s subsysSpec) string {
	path := "include/linux/" + s.Header
	guard := "_LINUX_" + strings.ToUpper(strings.ReplaceAll(strings.ReplaceAll(s.Header, ".", "_"), "-", "_"))
	var b strings.Builder
	fmt.Fprintf(&b, "#ifndef %s\n#define %s\n\n", guard, guard)
	b.WriteString("#include <linux/types.h>\n\n")
	fmt.Fprintf(&b, "struct %s {\n\tint id;\n\tu32 features;\n\tvoid *private_data;\n};\n\n", s.Struct)
	for i, m := range s.Macros {
		fmt.Fprintf(&b, "#define %s 0x%02x\n", m, 1<<uint(i))
	}
	b.WriteString("\n")
	for _, fn := range s.Funcs {
		fmt.Fprintf(&b, "extern int %s();\n", fn)
	}
	fmt.Fprintf(&b, "\n#endif /* %s */\n", guard)
	g.tree.Write(path, b.String())
	return path
}
