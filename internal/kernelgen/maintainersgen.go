package kernelgen

import (
	"fmt"
	"strings"
)

// maintainersFile renders MAINTAINERS: one coarse entry per subsystem and
// one fine-grained entry per driver, with mailing lists spread over a few
// hundred addresses — enough granularity for the janitor study of paper
// §IV, where subsystem counts range up to 530 and list counts up to 158
// (Table II).
func (g *generator) maintainersFile() {
	var b strings.Builder
	b.WriteString("List of maintainers and how to submit kernel changes\n\n")

	for _, s := range g.man.Subsystems {
		fmt.Fprintf(&b, "%s\n", s.Name)
		fmt.Fprintf(&b, "M:\t%s\n", g.subsystemLeadMaintainer(s))
		fmt.Fprintf(&b, "L:\t%s\n", s.List)
		fmt.Fprintf(&b, "S:\tMaintained\n")
		fmt.Fprintf(&b, "F:\t%s/\n", s.Dir)
		fmt.Fprintf(&b, "F:\t%s\n", s.Header)
		b.WriteString("\n")
	}

	for _, d := range g.man.Drivers {
		if d.EntryName == "" {
			continue // staging drivers fall under the STAGING umbrella
		}
		fmt.Fprintf(&b, "%s\n", d.EntryName)
		fmt.Fprintf(&b, "M:\t%s\n", d.Maintainer)
		fmt.Fprintf(&b, "L:\t%s\n", d.List)
		fmt.Fprintf(&b, "S:\tMaintained\n")
		fmt.Fprintf(&b, "F:\t%s\n", d.CFile)
		if d.ExtraCFile != "" {
			fmt.Fprintf(&b, "F:\t%s\n", d.ExtraCFile)
		}
		if d.Header != "" {
			fmt.Fprintf(&b, "F:\t%s\n", d.Header)
		}
		b.WriteString("\n")
	}
	g.tree.Write("MAINTAINERS", b.String())
}

// subsystemLeadMaintainer derives a stable lead maintainer address from the
// subsystem name.
func (g *generator) subsystemLeadMaintainer(s Subsystem) string {
	slug := strings.ToLower(strings.ReplaceAll(strings.Fields(s.Name)[0], "/", ""))
	return fmt.Sprintf("%s Lead <%s.lead@kernel.example.org>", strings.Fields(s.Name)[0], slug)
}
