package kernelgen

import (
	"fmt"
	"strings"
)

// arches generates arch/<name>/ for every architecture: Kconfig, Makefile,
// asm headers, kernel/ and mm/ sources, and configs/ defconfigs.
func (g *generator) arches() {
	g.archDriverKconfig = make(map[string][]string)
	g.defconfigExtras = make(map[string][]string)
	all := append(append([]string(nil), workingArches...), brokenArches...)
	for _, a := range all {
		g.oneArch(a)
	}
	// The powerpc prom_init analogue: compiling it drags in a whole-kernel
	// prerequisite build (paper §V-C).
	g.tree.Write("arch/powerpc/kernel/prom_init.c", `/*
 * prom_init - early boot firmware interface.
 *
 * This file is compiled in a special early-boot environment; building its
 * object triggers compilation of the entire kernel.
 */
#include <linux/kernel.h>
#include <asm/io.h>

#define PROM_ERROR 0xffffffff
#define PROM_STACK_SIZE 8192

static int prom_getprop(int node, const char *name)
{
	int v = readl(node + 0x10);
	printk("prom: prop %s = %d", name, v);
	return v;
}

int prom_init(unsigned long r3, unsigned long r4)
{
	int node = 1;
	int v = prom_getprop(node, "compatible");
	if (v == 0)
		return -1;
	writel(v, 0x20);
	return 0;
}
`)
	g.man.WholeBuildFile = "arch/powerpc/kernel/prom_init.c"
}

func (g *generator) oneArch(a string) {
	up := strings.ToUpper(a)
	base := "arch/" + a

	// asm headers. Every architecture declares the common I/O functions
	// plus one arch-unique platform hook; drivers bound to an architecture
	// call its hook, which no other architecture declares.
	g.tree.Write(base+"/include/asm/io.h", fmt.Sprintf(`#ifndef _ASM_%s_IO_H
#define _ASM_%s_IO_H

extern unsigned int readb(unsigned long addr);
extern unsigned int readw(unsigned long addr);
extern unsigned int readl(unsigned long addr);
extern void writeb(unsigned int v, unsigned long addr);
extern void writew(unsigned int v, unsigned long addr);
extern void writel(unsigned int v, unsigned long addr);
extern unsigned int inb(unsigned long port);
extern void outb(unsigned int v, unsigned long port);
extern unsigned int inw(unsigned long port);
extern void outw(unsigned int v, unsigned long port);

extern int %s_plat_init(void);
extern void %s_plat_teardown(void);

#endif
`, up, up, a, a))
	g.tree.Write(base+"/include/asm/irq.h", fmt.Sprintf(`#ifndef _ASM_%s_IRQ_H
#define _ASM_%s_IRQ_H

extern unsigned long arch_local_irq_save(void);
extern void arch_local_irq_restore(unsigned long flags);

#define NR_IRQS %d

#endif
`, up, up, 64+len(a)*8))
	g.tree.Write(base+"/include/asm/page.h", fmt.Sprintf(`#ifndef _ASM_%s_PAGE_H
#define _ASM_%s_PAGE_H

#define PAGE_SHIFT 12
#define PAGE_SIZE (1 << PAGE_SHIFT)

#endif
`, up, up))
	g.tree.Write(base+"/include/asm/barrier.h", fmt.Sprintf(`#ifndef _ASM_%s_BARRIER_H
#define _ASM_%s_BARRIER_H

#define mb() do { } while (0)
#define rmb() do { } while (0)
#define wmb() do { } while (0)

#endif
`, up, up))

	// Arch build plumbing.
	g.tree.Write(base+"/Makefile", "obj-y += kernel/ mm/\n")
	kernelObjs := "obj-y += setup.o irq.o time.o\n"
	if a == "powerpc" {
		kernelObjs += "obj-y += prom_init.o\n"
	}
	g.tree.Write(base+"/kernel/Makefile", kernelObjs)
	g.tree.Write(base+"/mm/Makefile", "obj-y += init.o\n")

	g.tree.Write(base+"/kernel/setup.c", fmt.Sprintf(`/*
 * %s architecture setup.
 */
#include <linux/kernel.h>
#include <asm/io.h>
#include <asm/page.h>

#define BOOT_FLAGS 0x2f

static int boot_cpu_ready;

int setup_arch(void)
{
	int ret = %s_plat_init();
	if (ret)
		return ret;
	boot_cpu_ready = 1;
	printk("%s: booted, page size %%d", PAGE_SIZE);
	writel(BOOT_FLAGS, 0x100);
	return 0;
}
`, a, a, a))
	g.tree.Write(base+"/kernel/irq.c", fmt.Sprintf(`#include <linux/kernel.h>
#include <asm/irq.h>

static int irq_depth;

int arch_irq_disable(void)
{
	unsigned long flags = arch_local_irq_save();
	irq_depth = irq_depth + 1;
	arch_local_irq_restore(flags);
	return irq_depth;
}

int arch_irq_count(void)
{
	return NR_IRQS;
}
`))
	g.tree.Write(base+"/kernel/time.c", fmt.Sprintf(`#include <linux/kernel.h>
#include <asm/io.h>

#define CLOCK_REG 0x%02x

unsigned int arch_read_clock(void)
{
	unsigned int lo = readl(CLOCK_REG);
	unsigned int hi = readl(CLOCK_REG + 4);
	return lo + hi;
}
`, 0x40+len(a)))
	g.tree.Write(base+"/mm/init.c", fmt.Sprintf(`#include <linux/kernel.h>
#include <asm/page.h>

unsigned long mem_pages = 0;

int mem_init(void)
{
	mem_pages = 4096;
	printk("%s: %%lu pages", mem_pages);
	return 0;
}
`, a))
}

// finishArchKconfigs writes each architecture's Kconfig after drivers have
// registered their arch-bound sections, plus the configs/ defconfigs.
func (g *generator) finishArchKconfigs() {
	all := append(append([]string(nil), workingArches...), brokenArches...)
	for _, a := range all {
		up := strings.ToUpper(a)
		var b strings.Builder
		fmt.Fprintf(&b, "config %s\n\tbool \"%s architecture\"\n\tdefault y\n\n", up, a)
		for _, section := range g.archDriverKconfig[a] {
			b.WriteString(section)
			b.WriteString("\n")
		}
		b.WriteString("source \"Kconfig.shared\"\n")
		g.tree.Write("arch/"+a+"/Kconfig", b.String())

		// Plain defconfig: enables the main subsystems only, so it never
		// adds configuration candidates for individual drivers.
		var d strings.Builder
		fmt.Fprintf(&d, "CONFIG_%s=y\n", up)
		for i, s := range subsystems {
			if (i+len(a))%3 != 0 { // each arch enables a different subset
				fmt.Fprintf(&d, "CONFIG_%s=y\n", s.ConfigVar)
			}
		}
		g.tree.Write(fmt.Sprintf("arch/%s/configs/%s_defconfig", a, a), d.String())

		// Extended defconfig: recovers the SiteDefconfigOnly regions by
		// turning MAINSTREAM off and the extension variables on (§V-B's
		// allyesconfig-vs-configs comparison).
		if extras := g.defconfigExtras[a]; len(extras) > 0 {
			var e strings.Builder
			fmt.Fprintf(&e, "CONFIG_%s=y\n", up)
			e.WriteString("# CONFIG_MAINSTREAM is not set\n")
			for _, s := range subsystems {
				fmt.Fprintf(&e, "CONFIG_%s=y\n", s.ConfigVar)
			}
			for _, line := range extras {
				e.WriteString(line)
				e.WriteString("\n")
			}
			g.tree.Write(fmt.Sprintf("arch/%s/configs/%s_extended_defconfig", a, a), e.String())
		}
	}
}
