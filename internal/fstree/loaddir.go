package fstree

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// LoadDir mirrors an on-disk root into an in-memory tree, loading only the
// build-relevant file kinds the analysis layers understand: C sources and
// headers, Makefile/Kbuild files, Kconfig files, defconfigs, and the
// kernelgen Kbuild.meta descriptor. ".git" and "golden" directories are
// skipped so checked-out corpora with pinned expectations can be scanned
// in place.
func LoadDir(root string) (*Tree, error) {
	tree := New()
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "golden" {
				return filepath.SkipDir
			}
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if !loadable(d.Name()) {
			return nil
		}
		content, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		tree.Write(rel, string(content))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tree, nil
}

func loadable(base string) bool {
	return strings.HasSuffix(base, ".c") || strings.HasSuffix(base, ".h") ||
		base == "Makefile" || base == "Kbuild" || base == "Kbuild.meta" ||
		strings.HasPrefix(base, "Kconfig") || strings.HasSuffix(base, "_defconfig")
}
