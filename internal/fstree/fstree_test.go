package fstree

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestClean(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"a/b", "a/b"},
		{"./a/b", "a/b"},
		{"a//b", "a/b"},
		{"/a/b", "a/b"},
		{"a/./b", "a/b"},
		{"a/c/../b", "a/b"},
		{".", ""},
		{"", ""},
		{"a\\b", "a/b"},
	}
	for _, tt := range tests {
		if got := Clean(tt.in); got != tt.want {
			t.Errorf("Clean(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestWriteReadRemove(t *testing.T) {
	tr := New()
	tr.Write("drivers/net/a.c", "int x;")
	got, err := tr.Read("./drivers//net/a.c")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got != "int x;" {
		t.Errorf("Read = %q", got)
	}
	if !tr.Exists("drivers/net/a.c") {
		t.Error("Exists = false, want true")
	}
	if err := tr.Remove("drivers/net/a.c"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := tr.Read("drivers/net/a.c"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Read after Remove: err = %v, want ErrNotExist", err)
	}
	if err := tr.Remove("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Remove missing: err = %v, want ErrNotExist", err)
	}
}

func TestUnderAndHasDir(t *testing.T) {
	tr := New()
	tr.Write("arch/x86/Makefile", "m")
	tr.Write("arch/x86/kernel/a.c", "a")
	tr.Write("arch/arm/Makefile", "m")
	tr.Write("drivers/net/b.c", "b")

	got := tr.Under("arch/x86")
	want := []string{"arch/x86/Makefile", "arch/x86/kernel/a.c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Under(arch/x86) = %v, want %v", got, want)
	}
	if !tr.HasDir("arch/arm") {
		t.Error("HasDir(arch/arm) = false")
	}
	if tr.HasDir("arch/mips") {
		t.Error("HasDir(arch/mips) = true, want false")
	}
	if len(tr.Under("")) != 4 {
		t.Errorf("Under(\"\") len = %d, want 4", len(tr.Under("")))
	}
	// "arch/x8" is a prefix of "arch/x86" as a string but not a directory.
	if tr.HasDir("arch/x8") {
		t.Error("HasDir(arch/x8) = true, want false: not a real directory")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	tr := New()
	tr.Write("a.c", "one")
	cl := tr.Clone()
	cl.Write("a.c", "two")
	cl.Write("b.c", "new")

	if got, _ := tr.Read("a.c"); got != "one" {
		t.Errorf("original mutated: a.c = %q", got)
	}
	if tr.Exists("b.c") {
		t.Error("original gained b.c from clone")
	}
	if got, _ := cl.Read("a.c"); got != "two" {
		t.Errorf("clone a.c = %q", got)
	}
}

func TestWalkOrderAndError(t *testing.T) {
	tr := New()
	tr.Write("b.c", "2")
	tr.Write("a.c", "1")
	tr.Write("c.c", "3")

	var order []string
	err := tr.Walk(func(p, c string) error {
		order = append(order, p)
		return nil
	})
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if !reflect.DeepEqual(order, []string{"a.c", "b.c", "c.c"}) {
		t.Errorf("Walk order = %v", order)
	}

	sentinel := errors.New("stop")
	var n int
	err = tr.Walk(func(p, c string) error {
		n++
		if p == "b.c" {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("Walk err = %v, want sentinel", err)
	}
	if n != 2 {
		t.Errorf("Walk visited %d files before stop, want 2", n)
	}
}

func TestPathsSorted(t *testing.T) {
	tr := New()
	for _, p := range []string{"z", "m/a", "a", "m/b"} {
		tr.Write(p, p)
	}
	want := []string{"a", "m/a", "m/b", "z"}
	if got := tr.Paths(); !reflect.DeepEqual(got, want) {
		t.Errorf("Paths = %v, want %v", got, want)
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want 4", tr.Len())
	}
}

// Property: for any path and content, a write followed by a read round-trips
// through Clean.
func TestQuickWriteReadRoundTrip(t *testing.T) {
	f := func(p string, content string) bool {
		if Clean(p) == "" {
			return true // no file named by the empty path
		}
		tr := New()
		tr.Write(p, content)
		got, err := tr.Read(p)
		return err == nil && got == content
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clean is idempotent.
func TestQuickCleanIdempotent(t *testing.T) {
	f := func(p string) bool {
		return Clean(Clean(p)) == Clean(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
