// Package fstree provides an in-memory file tree used as the working copy
// for all source manipulation and compilation in this repository.
//
// The JMake paper runs its toolchain inside a 126 GB tmpfs to avoid disk
// bottlenecks; fstree plays the same role here. Paths are slash-separated,
// relative, and cleaned on every operation, so "./a//b" and "a/b" name the
// same file.
package fstree

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
)

// ErrNotExist is returned when a read or remove names a file that is not in
// the tree.
var ErrNotExist = errors.New("fstree: file does not exist")

// Tree is a mutable in-memory file tree. The zero value is not usable; call
// New. Tree is not safe for concurrent mutation; the evaluation harness
// gives each worker its own Tree, mirroring the paper's 25 kernel copies.
type Tree struct {
	files map[string]string
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{files: make(map[string]string)}
}

// Clean normalizes a tree path: slash-separated, no leading "./", no
// duplicate separators.
func Clean(p string) string {
	p = path.Clean(strings.ReplaceAll(p, "\\", "/"))
	p = strings.TrimPrefix(p, "/")
	if p == "." {
		return ""
	}
	return p
}

// Write creates or replaces the file at p with content.
func (t *Tree) Write(p, content string) {
	t.files[Clean(p)] = content
}

// Read returns the content of the file at p.
func (t *Tree) Read(p string) (string, error) {
	c, ok := t.files[Clean(p)]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	return c, nil
}

// Exists reports whether a file exists at p. Directories are implicit:
// Exists is about files only; use HasDir for directories.
func (t *Tree) Exists(p string) bool {
	_, ok := t.files[Clean(p)]
	return ok
}

// HasDir reports whether any file lives under directory p.
func (t *Tree) HasDir(p string) bool {
	prefix := Clean(p)
	if prefix == "" {
		return len(t.files) > 0
	}
	prefix += "/"
	for f := range t.files {
		if strings.HasPrefix(f, prefix) {
			return true
		}
	}
	return false
}

// Remove deletes the file at p.
func (t *Tree) Remove(p string) error {
	cp := Clean(p)
	if _, ok := t.files[cp]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	delete(t.files, cp)
	return nil
}

// Len returns the number of files in the tree.
func (t *Tree) Len() int { return len(t.files) }

// Paths returns all file paths, sorted.
func (t *Tree) Paths() []string {
	out := make([]string, 0, len(t.files))
	for p := range t.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Under returns all file paths under directory dir, sorted. An empty dir
// returns every path.
func (t *Tree) Under(dir string) []string {
	prefix := Clean(dir)
	if prefix != "" {
		prefix += "/"
	}
	var out []string
	for p := range t.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the tree. Used for history checkpoints and
// per-worker working copies.
func (t *Tree) Clone() *Tree {
	nt := &Tree{files: make(map[string]string, len(t.files))}
	for p, c := range t.files {
		nt.files[p] = c
	}
	return nt
}

// WalkFunc is called by Walk for every file in sorted path order.
type WalkFunc func(path, content string) error

// Walk visits every file in sorted path order, stopping at the first error.
func (t *Tree) Walk(fn WalkFunc) error {
	for _, p := range t.Paths() {
		if err := fn(p, t.files[p]); err != nil {
			return err
		}
	}
	return nil
}
