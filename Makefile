GO ?= go

.PHONY: check build test vet race lint fuzz-presence bench-witness bench-workers bench-static eval

check: vet build test race lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick iteration loop: skips the long chaos seed sweeps.
short:
	$(GO) test -short ./...

# Static presence-condition lint over the golden corpus: fails on any
# error (unreadable file, malformed tree), and go vet keeps the linter's
# own source honest.
lint: vet
	$(GO) run ./cmd/jmake-lint -root examples/presence/src >/dev/null
	$(GO) run ./cmd/jmake-lint -root examples/presence/src -dead
	$(GO) run ./cmd/jmake-lint -root examples/presence/src -json >/dev/null

# Short fuzz pass: malformed #if input must never panic the analysis.
fuzz-presence:
	$(GO) test ./internal/presence/ -run '^$$' -fuzz FuzzPresenceParse -fuzztime 20s

bench-witness:
	$(GO) test ./internal/core/ -run '^$$' -bench BenchmarkWitnessedIn -benchmem

# Patch-window throughput at 1/2/4/8 workers (speedup tracks CPU cores).
bench-workers:
	$(GO) test ./internal/eval/ -run '^$$' -bench BenchmarkCheckWindow -benchtime 3x

# Virtual build time with and without static presence-condition pruning.
bench-static:
	$(GO) test ./internal/eval/ -run '^$$' -bench BenchmarkStaticPruning -benchtime 3x

eval:
	$(GO) run ./cmd/jmake-eval summary
