GO ?= go

.PHONY: check build test vet race bench-witness bench-workers eval

check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick iteration loop: skips the long chaos seed sweeps.
short:
	$(GO) test -short ./...

bench-witness:
	$(GO) test ./internal/core/ -run '^$$' -bench BenchmarkWitnessedIn -benchmem

# Patch-window throughput at 1/2/4/8 workers (speedup tracks CPU cores).
bench-workers:
	$(GO) test ./internal/eval/ -run '^$$' -bench BenchmarkCheckWindow -benchtime 3x

eval:
	$(GO) run ./cmd/jmake-eval summary
