GO ?= go

.PHONY: check build test vet race lint lint-go fuzz-presence bench-witness bench-workers bench-static bench bench-scaling cache-smoke trace-smoke daemon-smoke audit-smoke follow-smoke obs-smoke eval

check: vet build test race lint lint-go cache-smoke trace-smoke daemon-smoke audit-smoke follow-smoke obs-smoke bench-scaling

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick iteration loop: skips the long chaos seed sweeps.
short:
	$(GO) test -short ./...

# Static presence-condition lint over the golden corpus: fails on any
# error (unreadable file, malformed tree), and go vet keeps the linter's
# own source honest.
lint: vet
	$(GO) run ./cmd/jmake-lint -root examples/presence/src >/dev/null
	$(GO) run ./cmd/jmake-lint -root examples/presence/src -dead
	$(GO) run ./cmd/jmake-lint -root examples/presence/src -json >/dev/null

# Go-source lint: go vet always; staticcheck when the host has it (the
# build container does not vendor it and nothing may be installed there).
lint-go:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint-go: staticcheck not installed; ran go vet only"; \
	fi

# Whole-tree audit ground truth: an emitted tree with 10 seeded mismatches
# must audit to exactly those 10 findings (exit code 10, verify-exact), a
# clean emitted tree must audit to zero, and the JSON report must be
# byte-identical across -workers settings.
audit-smoke:
	@GO="$(GO)" sh scripts/audit-smoke.sh

# Short fuzz pass: malformed #if input must never panic the analysis.
fuzz-presence:
	$(GO) test ./internal/presence/ -run '^$$' -fuzz FuzzPresenceParse -fuzztime 20s

bench-witness:
	$(GO) test ./internal/core/ -run '^$$' -bench BenchmarkWitnessedIn -benchmem

# Patch-window throughput at 1/2/4/8 workers (speedup tracks CPU cores).
bench-workers:
	$(GO) test ./internal/eval/ -run '^$$' -bench BenchmarkCheckWindow -benchtime 3x

# Virtual build time with and without static presence-condition pruning.
bench-static:
	$(GO) test ./internal/eval/ -run '^$$' -bench BenchmarkStaticPruning -benchtime 3x

# Pipeline benchmark: worker sweep, cold-vs-warm result-cache passes, and
# the reactive follower replay (per-commit virtual vs effective cost).
# Writes BENCH_pipeline.json (the EXPERIMENTS.md §cache numbers come from it).
bench:
	$(GO) run ./cmd/jmake-bench -reactive -reactive-commits 60 -o BENCH_pipeline.json

# Worker-scaling smoke gate: a fast corpus through the window at 1 and 4
# workers; fails if the 4-worker pass is not >= 1.5x the 1-worker
# throughput (a regression to the old convoy-on-global-mutexes pathology).
# Hosts with < 4 CPUs skip — wall-clock speedup needs real cores.
bench-scaling:
	$(GO) run ./cmd/jmake-bench -scaling-check -tree-scale 0.25 -commit-scale 0.01 -min-speedup 1.5

# Result-cache round trip: two evaluations against the same -cache-dir
# (cold, then warm from the persisted tier) must emit byte-identical JSON.
cache-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) run ./cmd/jmake-eval -json -tree-scale 0.15 -commit-scale 0.008 -cache-dir "$$dir/cache" -workers 2 >"$$dir/cold.json" 2>/dev/null && \
	$(GO) run ./cmd/jmake-eval -json -tree-scale 0.15 -commit-scale 0.008 -cache-dir "$$dir/cache" -workers 4 >"$$dir/warm.json" 2>/dev/null && \
	cmp "$$dir/cold.json" "$$dir/warm.json" && echo "cache-smoke: cold and warm JSON byte-identical"

# Trace determinism: the Chrome trace export must be structurally valid
# (balanced B/E pairs, monotone per-track timestamps, valid pid/tid — see
# cmd/trace-check) and byte-identical across worker counts, because span
# times come from the virtual clock, never the host scheduler.
trace-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) run ./cmd/jmake-eval -tree-scale 0.15 -commit-scale 0.008 -workers 1 -trace-out "$$dir/w1.json" summary >/dev/null && \
	$(GO) run ./cmd/jmake-eval -tree-scale 0.15 -commit-scale 0.008 -workers 4 -trace-out "$$dir/w4.json" summary >/dev/null && \
	$(GO) run ./cmd/trace-check "$$dir/w1.json" "$$dir/w4.json" && \
	cmp "$$dir/w1.json" "$$dir/w4.json" && echo "trace-smoke: traces valid and byte-identical across workers"

# Incremental-follower round trip: stream 20 commits warm at workers 1
# and 4 plus a cold comparator pass, cmp every report three ways (warmth
# and concurrency may change cost, never bytes), spot-check one report
# against the one-shot CLI, and gate steady-state small commits at
# <= 30% of their cold price.
follow-smoke:
	@GO="$(GO)" sh scripts/follow-smoke.sh

# Service round trip: start jmaked, replay 200 requests at concurrency 32
# (plus a -chaos burst), byte-compare a daemon report against the batch
# CLI's, and require a clean SIGTERM drain with a flushed cache tier.
daemon-smoke:
	@GO="$(GO)" sh scripts/daemon-smoke.sh

# Observability round trip: chaos burst against a tight-queue jmaked,
# then require a valid Prometheus exposition (trace-check -prom), shed
# records in the flight recorder, a span tree from /tracez for a
# successful request, the structured NDJSON request log, and a clean
# drain.
obs-smoke:
	@GO="$(GO)" sh scripts/obs-smoke.sh

eval:
	$(GO) run ./cmd/jmake-eval summary
