GO ?= go

.PHONY: check build test vet race bench-witness eval

check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick iteration loop: skips the long chaos seed sweeps.
short:
	$(GO) test -short ./...

bench-witness:
	$(GO) test ./internal/core/ -run '^$$' -bench BenchmarkWitnessedIn -benchmem

eval:
	$(GO) run ./cmd/jmake-eval summary
