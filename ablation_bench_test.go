// Ablation benchmarks for the design choices DESIGN.md records: mutation
// minimization (one per region vs one per line), session sharing
// (amortized Kconfig evaluation), grouped compilation (many files per make
// invocation), and the paper's proposed allmodconfig extension.
package jmake_test

import (
	"strings"
	"testing"

	"jmake"
	"jmake/internal/core"
	"jmake/internal/kernelgen"
)

// BenchmarkAblationMutationMinimization compares the paper's one-mutation-
// per-region placement with a naive one-per-changed-line scheme: the
// metric is how many sites a janitor must inspect when lines are reported
// uncompiled (paper §III-B's motivation for minimizing).
func BenchmarkAblationMutationMinimization(b *testing.B) {
	tree, man, err := kernelgen.Generate(kernelgen.Params{Seed: 55, Scale: 0.15})
	if err != nil {
		b.Fatal(err)
	}
	content, err := tree.Read(man.Drivers[0].CFile)
	if err != nil {
		b.Fatal(err)
	}
	total := strings.Count(content, "\n")
	// A sweeping cleanup: every 2nd line changed.
	var changed []int
	for i := 1; i <= total; i += 2 {
		changed = append(changed, i)
	}
	var minimized int
	for i := 0; i < b.N; i++ {
		res := core.Mutate(man.Drivers[0].CFile, content, changed)
		minimized = len(res.Mutations)
	}
	b.ReportMetric(float64(len(changed)), "naive-sites")
	b.ReportMetric(float64(minimized), "minimized-sites")
}

// BenchmarkAblationSessionSharing measures the cost of re-deriving the
// session state (Kconfig parse + fixpoint + arch index) per check versus
// reusing a shared session, the trick that keeps the 12,000-patch
// evaluation tractable.
func BenchmarkAblationSessionSharing(b *testing.B) {
	tree, man, err := jmake.GenerateKernel(56, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	hist, err := jmake.SynthesizeHistory(tree, man, 57, 0.008)
	if err != nil {
		b.Fatal(err)
	}
	ids, _ := hist.Repo.Between("v4.3", "v4.4", jmake.ModifyingNonMerge)

	b.Run("fresh-session-per-check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := jmake.CheckCommit(hist.Repo, ids[i%len(ids)], jmake.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared-session", func(b *testing.B) {
		base, err := hist.Repo.CheckoutTree(ids[0])
		if err != nil {
			b.Fatal(err)
		}
		session, err := jmake.NewSession(base)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := ids[i%len(ids)]
			snap, err := hist.Repo.CheckoutTree(id)
			if err != nil {
				b.Fatal(err)
			}
			fds, err := hist.Repo.FileDiffs(id)
			if err != nil {
				b.Fatal(err)
			}
			checker := jmake.NewChecker(session, snap, 1, jmake.Options{})
			if _, err := checker.CheckPatch(id, fds); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationGroupedCompilation compares virtual make time with
// grouped .i generation (paper: up to 50 files per invocation) against
// one-file-per-invocation, on a multi-file patch.
func BenchmarkAblationGroupedCompilation(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		group int
	}{
		{"group-50", 50},
		{"group-1", 1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			tree, man, err := jmake.GenerateKernel(58, 0.25)
			if err != nil {
				b.Fatal(err)
			}
			// A patch touching five drivers at once.
			session, err := jmake.NewSession(tree)
			if err != nil {
				b.Fatal(err)
			}
			var fds []jmake.FileDiff
			snap := tree.Clone()
			count := 0
			for _, d := range man.Drivers {
				if d.ArchBound != "" || count >= 5 {
					continue
				}
				old, err := tree.Read(d.CFile)
				if err != nil {
					continue
				}
				edited := strings.Replace(old, "0x04", "0x05", 1)
				if edited == old {
					continue
				}
				snap.Write(d.CFile, edited)
				fd, _ := jmake.DiffFiles(d.CFile, old, edited)
				fds = append(fds, fd)
				count++
			}
			if count < 2 {
				b.Skip("not enough editable drivers")
			}
			var virtual float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				checker := jmake.NewChecker(session, snap, 1, jmake.Options{MaxGroupSize: cfg.group})
				report, err := checker.CheckPatch("group", fds)
				if err != nil {
					b.Fatal(err)
				}
				virtual = report.Total.Seconds()
			}
			b.ReportMetric(virtual, "virtual-s")
		})
	}
}

// BenchmarkAblationAllModConfig measures the configuration-count cost of
// the paper's allmodconfig extension on a MODULE-escaping patch.
func BenchmarkAblationAllModConfig(b *testing.B) {
	tree, man, err := jmake.GenerateKernel(59, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	var target kernelgen.Driver
	found := false
	for _, d := range man.Drivers {
		if d.Sites[kernelgen.SiteIfdefModule] && d.ArchBound == "" {
			target, found = d, true
			break
		}
	}
	if !found {
		b.Skip("no MODULE-site drivers at this scale")
	}
	old, err := tree.Read(target.CFile)
	if err != nil {
		b.Fatal(err)
	}
	i := strings.Index(old, "#ifdef MODULE")
	j := i + strings.Index(old[i:], "0x")
	edited := old[:j+2] + "7" + old[j+3:]
	snap := tree.Clone()
	snap.Write(target.CFile, edited)
	fd, _ := jmake.DiffFiles(target.CFile, old, edited)
	session, err := jmake.NewSession(tree)
	if err != nil {
		b.Fatal(err)
	}

	for _, cfg := range []struct {
		name   string
		allmod bool
	}{
		{"allyes-only", false},
		{"with-allmod", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var certified bool
			var configs int
			for i := 0; i < b.N; i++ {
				checker := jmake.NewChecker(session, snap, 1, jmake.Options{TryAllModConfig: cfg.allmod})
				report, err := checker.CheckPatch("allmod", []jmake.FileDiff{fd})
				if err != nil {
					b.Fatal(err)
				}
				certified = report.Certified()
				configs = len(report.ConfigDurations)
			}
			b.ReportMetric(b2f(certified), "certified")
			b.ReportMetric(float64(configs), "configs")
		})
	}
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
