/* foo.c - one fixture per audit finding category, plus the #if 0 idiom. */
int foo_base;

/* undefined-reference: no Kconfig file declares CONFIG_MISSPELLED. */
#ifdef CONFIG_MISSPELLED
int foo_misspelled;
#endif

/* dead-code: the Kbuild gate obj-$(CONFIG_FOO) forces FOO on. */
#ifndef CONFIG_FOO
int foo_without_foo;
#endif

/* #if 0 is commented-out code, not a mismatch: never reported. */
#if 0
int foo_disabled_experiment;
#endif

/* live: BAR is reachable (FOO=y, BAR=y), so this is not reported. */
#ifdef CONFIG_BAR
int foo_bar_glue;
#endif
