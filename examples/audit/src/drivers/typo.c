/* typo.c - gated by the misspelled rule; its own content is clean. */
int typo_probe(void)
{
	return 0;
}
