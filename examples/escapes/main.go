// Escapes: demonstrate every Table IV category — the ways a changed line
// can silently avoid the compiler even though the file builds cleanly.
//
// For each category we pick a generated driver that contains such a
// region, edit one line inside it, and run JMake. The file compiles; the
// report shows which line the compiler never saw, and why.
//
//	go run ./examples/escapes
package main

import (
	"fmt"
	"log"
	"strings"

	"jmake"
)

// demo is one escape scenario: how to find the target region and what the
// paper's Table IV calls it.
type demo struct {
	title   string
	guard   string // marker of the guarded region's opening line
	expects jmake.EscapeReason
}

var demos = []demo{
	{"variable allyesconfig cannot set", "_LEGACY\n", jmake.EscapeIfdefNotAllyes},
	{"variable never declared in any Kconfig", "_PHANTOM_GLUE\n", jmake.EscapeIfdefNeverSet},
	{"code only built as a module", "#ifdef MODULE", jmake.EscapeIfdefModule},
	{"code under #ifndef of an enabled variable", "#ifndef CONFIG_", jmake.EscapeIfndefOrElse},
	{"code under #if 0", "#if 0", jmake.EscapeIfZero},
}

func main() {
	tree, man, err := jmake.GenerateKernel(7, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	session, err := jmake.NewSession(tree)
	if err != nil {
		log.Fatal(err)
	}

	for _, d := range demos {
		path, oldContent, newContent := findAndEdit(tree, man, d.guard)
		if path == "" {
			fmt.Printf("== %s: no suitable driver generated at this scale ==\n\n", d.title)
			continue
		}
		snapshot := tree.Clone()
		snapshot.Write(path, newContent)
		fd, changed := jmake.DiffFiles(path, oldContent, newContent)
		if !changed {
			log.Fatalf("edit to %s produced no diff", path)
		}

		checker := jmake.NewChecker(session, snapshot, 1, jmake.Options{})
		report, err := checker.CheckPatch("demo", []jmake.FileDiff{fd})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s ==\n", d.title)
		fmt.Printf("edited %s:\n%s", path, indent(jmake.FormatDiff(fd)))
		f := report.Files[0]
		fmt.Printf("JMake: %s — %d/%d mutations witnessed\n", f.Status, f.FoundMutations, f.Mutations)
		for _, esc := range f.Escapes {
			marker := " "
			if esc.Reason == d.expects {
				marker = "✓"
			}
			fmt.Printf("  %s line %d escaped the compiler: %s\n", marker, esc.Mutation.Line, esc.Reason)
		}
		fmt.Println()
	}
}

// findAndEdit locates a driver whose probe contains the guarded region and
// bumps the first editable line inside it.
func findAndEdit(tree *jmake.Tree, man *jmake.Manifest, guard string) (path, oldContent, newContent string) {
	for _, drv := range man.Drivers {
		if drv.ArchBound != "" {
			continue
		}
		content, err := tree.Read(drv.CFile)
		if err != nil {
			continue
		}
		idx := strings.Index(content, guard)
		if idx < 0 {
			continue
		}
		// Edit the first line after the guard's newline.
		lineStart := idx + strings.IndexByte(content[idx:], '\n') + 1
		lineEnd := lineStart + strings.IndexByte(content[lineStart:], '\n')
		line := content[lineStart:lineEnd]
		edited := bumpLastDigit(line)
		if edited == line {
			continue
		}
		return drv.CFile, content, content[:lineStart] + edited + content[lineEnd:]
	}
	return "", "", ""
}

// bumpLastDigit increments the last decimal digit found on the line.
func bumpLastDigit(line string) string {
	for i := len(line) - 1; i >= 0; i-- {
		c := line[i]
		if c >= '0' && c <= '8' {
			return line[:i] + string(c+1) + line[i+1:]
		}
		if c == '9' {
			return line[:i] + "8" + line[i+1:]
		}
	}
	return line
}

func indent(s string) string {
	var b strings.Builder
	for _, ln := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("    ")
		b.WriteString(ln)
		b.WriteString("\n")
	}
	return b.String()
}
