/* #ifndef and its #else partition every configuration. */
#ifndef CONFIG_FOO
int without_foo;
#else
int with_foo;
#endif
