/* Three-branch chain: each branch carries the negation of the earlier
 * ones. Note BAZ depends on BAR in Kconfig, so the third branch
 * (!FOO && !BAR && BAZ) is dead once dependencies are conjoined — the
 * stack condition alone stays satisfiable. */
#if defined(CONFIG_FOO)
int first;
#elif defined(CONFIG_BAR)
int second;
#elif defined(CONFIG_BAZ)
int third;
#else
int fallback;
#endif
