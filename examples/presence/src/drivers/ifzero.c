int live;

#if 0
int never_compiled;
#endif

#if defined(CONFIG_FOO) && !defined(CONFIG_FOO)
int contradiction;
#endif
