/* Nested #ifdef: the inner region needs both options. */
int base;

#ifdef CONFIG_FOO
int foo_only;
#ifdef CONFIG_BAR
int foo_and_bar;
#endif
int foo_tail;
#endif

int always;
