/* Built only when CONFIG_GATED != n (see drivers/Makefile). */
int gated_code;

#ifdef MODULE
int only_as_module;
#endif
