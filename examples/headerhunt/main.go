// Headerhunt: headers cannot be compiled directly, so JMake hunts for .c
// files that witness a changed header's lines (paper §III-E). This example
// edits two kinds of headers:
//
//  1. a driver's local header — found via the include edge and the changed
//     macro's name appearing in the driver's .c file;
//
//  2. a subsystem-wide API header — included by dozens of drivers, which
//     exercises the grouped-compilation path.
//
//     go run ./examples/headerhunt
package main

import (
	"fmt"
	"log"
	"strings"

	"jmake"
)

func main() {
	tree, man, err := jmake.GenerateKernel(3, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	session, err := jmake.NewSession(tree)
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. Local driver header.
	var local string
	for _, d := range man.Drivers {
		if d.Header != "" && d.ArchBound == "" {
			local = d.Header
			break
		}
	}
	check(session, tree, local, "driver-local header")

	// --- 2. Subsystem API header (many includers).
	check(session, tree, man.Subsystems[0].Header, "subsystem-wide header")
}

func check(session *jmake.Session, tree *jmake.Tree, path, kind string) {
	content, err := tree.Read(path)
	if err != nil {
		log.Fatal(err)
	}
	edited := bumpFirstHexConstant(content)
	if edited == content {
		log.Fatalf("%s: nothing to edit", path)
	}
	snapshot := tree.Clone()
	snapshot.Write(path, edited)
	fd, _ := jmake.DiffFiles(path, content, edited)

	checker := jmake.NewChecker(session, snapshot, 1, jmake.Options{})
	report, err := checker.CheckPatch("headerhunt", []jmake.FileDiff{fd})
	if err != nil {
		log.Fatal(err)
	}
	f := report.Files[0]
	fmt.Printf("== %s: %s ==\n", kind, path)
	fmt.Printf("status: %s — %d/%d mutations witnessed\n", f.Status, f.FoundMutations, f.Mutations)
	fmt.Printf("the patch itself contains no .c file, so JMake selected and compiled %d candidate .c file(s)\n",
		f.ExtraCCompiles)
	fmt.Printf("make invocations: %d for .i, %d for .o; virtual time %v\n\n",
		len(report.MakeIDurations), len(report.MakeODurations), report.Total.Round(1e6))
}

// bumpFirstHexConstant changes the first 0xNN literal in the content.
func bumpFirstHexConstant(content string) string {
	i := strings.Index(content, "0x")
	if i < 0 {
		return content
	}
	// Flip one hex digit after "0x".
	j := i + 2
	if j >= len(content) {
		return content
	}
	repl := byte('7')
	if content[j] == '7' {
		repl = '3'
	}
	return content[:j] + string(repl) + content[j+1:]
}
