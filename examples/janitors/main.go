// Janitors: walk through the paper's §IV identification method — filter
// developers by activity thresholds (Table I), rank the survivors by the
// coefficient of variation of their per-file patch counts, and compare the
// result against the planted Table II roster.
//
//	go run ./examples/janitors
package main

import (
	"fmt"
	"log"

	"jmake"
)

func main() {
	tree, man, err := jmake.GenerateKernel(5, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	hist, err := jmake.SynthesizeHistory(tree, man, 6, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	mtext, err := hist.Repo.ReadTip("MAINTAINERS")
	if err != nil {
		log.Fatal(err)
	}

	// Thresholds scaled to the 20% history volume.
	th := jmake.DefaultJanitorThresholds()
	th.MinPatches = 4
	th.MinSubsystems = 8
	th.MinLists = 3
	th.MinWindowPatches = 4

	js, err := jmake.IdentifyJanitors(hist.Repo, mtext, th)
	if err != nil {
		log.Fatal(err)
	}

	roster := map[string]jmake.JanitorSpec{}
	for _, spec := range hist.Janitors {
		roster[spec.Email] = spec
	}

	fmt.Println("rank  janitor                       patches  subsys  lists  cv     target-cv")
	for i, j := range js {
		target := "   -"
		if spec, ok := roster[j.Email]; ok {
			target = fmt.Sprintf("%.2f", spec.CVTarget)
		}
		fmt.Printf("%4d  %-28s  %7d  %6d  %5d  %.2f   %s\n",
			i+1, j.Name, j.Patches, j.Subsystems, j.Lists, j.FileCV, target)
	}

	fmt.Println("\nThe ranking prefers developers who touch each file about once —")
	fmt.Println("breadth-first cleanup work — over maintainers who revisit the same")
	fmt.Println("files (high cv) or never leave one subsystem (filtered out).")
}
