// Quickstart: generate a kernel-shaped workspace, take the most recent
// commits from its history, and ask JMake whether every changed line was
// actually seen by the compiler.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"jmake"
)

func main() {
	// A small workspace: ~250 drivers across 32 subsystems, 26
	// architectures, full Kconfig/Kbuild plumbing.
	tree, man, err := jmake.GenerateKernel(1, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	hist, err := jmake.SynthesizeHistory(tree, man, 2, 0.02)
	if err != nil {
		log.Fatal(err)
	}

	// The evaluation window, filtered the way the paper filters git log.
	ids, err := hist.Repo.Between("v4.3", "v4.4", jmake.ModifyingNonMerge)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workspace has %d files and %d candidate commits\n\n", tree.Len(), len(ids))

	checked := 0
	for i := len(ids) - 1; i >= 0 && checked < 8; i-- {
		report, err := jmake.CheckCommit(hist.Repo, ids[i], jmake.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if len(report.Files) == 0 {
			continue // not a .c/.h commit
		}
		checked++

		verdict := "all changed lines were subjected to the compiler"
		if !report.Certified() {
			verdict = "NOT every changed line reached the compiler"
		}
		fmt.Printf("commit %.12s: %s\n", ids[i], verdict)
		for _, f := range report.Files {
			fmt.Printf("   %-44s %s (%d/%d mutations witnessed, arches %v)\n",
				f.Path, f.Status, f.FoundMutations, f.Mutations, f.UsedArches)
			for _, esc := range f.Escapes {
				fmt.Printf("      line %d escaped: %s\n", esc.Mutation.Line, esc.Reason)
			}
		}
		fmt.Printf("   virtual running time: %v\n\n", report.Total.Round(1e6))
	}
}
