// Extensions: the three capabilities this reproduction adds beyond the
// paper's prototype, demonstrated on the same failing change:
//
//  1. prescan      — warn about doomed regions before building (§VII);
//  2. allmodconfig — cover #ifdef MODULE regions (§V-B's suggestion);
//  3. coverage     — synthesize configurations for ifdef/else pairs, which
//     plain JMake can never certify (§VII);
//
// plus the annotated-diff output that shows the verdict line by line.
//
//	go run ./examples/extensions
package main

import (
	"fmt"
	"log"
	"strings"

	"jmake"
)

func main() {
	tree, man, err := jmake.GenerateKernel(13, 0.35)
	if err != nil {
		log.Fatal(err)
	}
	session, err := jmake.NewSession(tree)
	if err != nil {
		log.Fatal(err)
	}

	// Find a portable driver and craft a change with BOTH a MODULE-guarded
	// line and an ifdef/else pair — invisible to plain allyesconfig runs.
	var target string
	for _, d := range man.Drivers {
		if d.ArchBound == "" && !strings.Contains(d.CFile, "staging") {
			target = d.CFile
			break
		}
	}
	old, err := tree.Read(target)
	if err != nil {
		log.Fatal(err)
	}
	anchor := "\tkfree(p);\n\treturn 0;"
	edited := strings.Replace(old, anchor,
		"#ifdef MODULE\n\tp->flags = 0x31;\n#endif\n"+
			"#ifdef CONFIG_MAINSTREAM\n\tp->state = 5;\n#else\n\tp->state = 6;\n#endif\n"+anchor, 1)
	if edited == old {
		log.Fatalf("anchor not found in %s", target)
	}
	snapshot := tree.Clone()
	snapshot.Write(target, edited)
	fd, _ := jmake.DiffFiles(target, old, edited)

	check := func(label string, opts jmake.Options) *jmake.Report {
		checker := jmake.NewChecker(session, snapshot, 1, opts)
		report, err := checker.CheckPatch(label, []jmake.FileDiff{fd})
		if err != nil {
			log.Fatal(err)
		}
		covered, relevant := jmake.CoverageRatio(report)
		fmt.Printf("%-38s certified=%-5v lines witnessed %d/%d, configs tried %d\n",
			label, report.Certified(), covered, relevant, len(report.ConfigDurations))
		for _, w := range report.PrescanWarnings {
			fmt.Printf("    prescan warning: line %d — %s\n", w.Mutation.Line, w.Reason)
		}
		return report
	}

	fmt.Printf("change under test (%s): MODULE guard + ifdef/else pair\n\n", target)
	check("plain JMake (paper prototype)", jmake.Options{Prescan: true})
	check("+ allmodconfig", jmake.Options{TryAllModConfig: true})
	check("+ coverage configs", jmake.Options{CoverageConfigs: true})
	full := check("+ allmodconfig + coverage configs", jmake.Options{TryAllModConfig: true, CoverageConfigs: true})

	fmt.Println("\nannotated patch with everything enabled:")
	fmt.Print(jmake.Annotate([]jmake.FileDiff{fd}, full))
}
