// Benchmarks regenerating every table and figure of the paper's §V
// evaluation, plus micro-benchmarks of the substrate. The table/figure
// benchmarks share one reduced-scale evaluation run (the full-scale
// numbers come from cmd/jmake-eval); each reports its headline quantities
// as custom metrics so `go test -bench` output doubles as a results sheet.
package jmake_test

import (
	"strings"
	"sync"
	"testing"

	"jmake"
	"jmake/internal/cc"
	"jmake/internal/core"
	"jmake/internal/cpp"
	"jmake/internal/kbuild"
	"jmake/internal/kconfig"
	"jmake/internal/kernelgen"
	"jmake/internal/textdiff"
)

var (
	benchOnce sync.Once
	benchRun  *jmake.Run
	benchErr  error
)

// sharedRun executes the reduced evaluation once for all benchmarks.
func sharedRun(b *testing.B) *jmake.Run {
	benchOnce.Do(func() {
		benchRun, benchErr = jmake.Evaluate(jmake.EvalParams{
			TreeSeed:    101,
			HistorySeed: 102,
			ModelSeed:   103,
			TreeScale:   0.5,
			CommitScale: 0.08,
		})
	})
	if benchErr != nil {
		b.Fatalf("evaluation failed: %v", benchErr)
	}
	return benchRun
}

func BenchmarkTableI_Thresholds(b *testing.B) {
	var th jmake.JanitorThresholds
	for i := 0; i < b.N; i++ {
		th = jmake.DefaultJanitorThresholds()
	}
	b.ReportMetric(float64(th.MinPatches), "min-patches")
	b.ReportMetric(float64(th.MinSubsystems), "min-subsystems")
	b.ReportMetric(float64(th.MinLists), "min-lists")
}

func BenchmarkTableII_Janitors(b *testing.B) {
	r := sharedRun(b)
	var n int
	for i := 0; i < b.N; i++ {
		n = len(r.TableII())
	}
	_ = n
	b.ReportMetric(float64(len(r.Janitors)), "janitors")
}

func BenchmarkTableIII_PatchMix(b *testing.B) {
	r := sharedRun(b)
	var t3 interface{ Render() string }
	for i := 0; i < b.N; i++ {
		t3 = r.ComputeTableIII()
	}
	tab := r.ComputeTableIII()
	_ = t3
	b.ReportMetric(pctm(tab.All.COnly, tab.All.Total), "c-only-%")
	b.ReportMetric(pctm(tab.All.HOnly, tab.All.Total), "h-only-%")
	b.ReportMetric(pctm(tab.All.Both, tab.All.Total), "both-%")
}

func BenchmarkTableIV_EscapeReasons(b *testing.B) {
	r := sharedRun(b)
	for i := 0; i < b.N; i++ {
		_ = r.ComputeTableIV(false)
	}
	tab := r.ComputeTableIV(false)
	b.ReportMetric(float64(tab.AffectedFiles), "affected-files")
	b.ReportMetric(float64(len(tab.Counts)), "categories")
}

func BenchmarkFig4a_ConfigCreationCDF(b *testing.B) {
	r := sharedRun(b)
	d := r.ComputeDurations()
	for i := 0; i < b.N; i++ {
		_ = d.Fig4a()
	}
	cdf := d.Fig4a()
	b.ReportMetric(cdf.Max(), "max-s")
	b.ReportMetric(100*cdf.FractionAtOrBelow(5), "pct<=5s")
}

func BenchmarkFig4b_MakeICDF(b *testing.B) {
	r := sharedRun(b)
	d := r.ComputeDurations()
	for i := 0; i < b.N; i++ {
		_ = d.Fig4b()
	}
	cdf := d.Fig4b()
	b.ReportMetric(cdf.Max(), "max-s")
	b.ReportMetric(100*cdf.FractionAtOrBelow(15), "pct<=15s")
}

func BenchmarkFig4c_MakeOCDF(b *testing.B) {
	r := sharedRun(b)
	d := r.ComputeDurations()
	for i := 0; i < b.N; i++ {
		_ = d.Fig4c()
	}
	cdf := d.Fig4c()
	b.ReportMetric(100*cdf.FractionAtOrBelow(7), "pct<=7s")
	b.ReportMetric(cdf.Max(), "max-s")
}

func BenchmarkFig5_OverallRuntimeCDF(b *testing.B) {
	r := sharedRun(b)
	d := r.ComputeDurations()
	for i := 0; i < b.N; i++ {
		_ = d.Fig5()
	}
	cdf := d.Fig5()
	b.ReportMetric(100*cdf.FractionAtOrBelow(30), "pct<=30s")
	b.ReportMetric(100*cdf.FractionAtOrBelow(60), "pct<=60s")
	b.ReportMetric(cdf.Max(), "max-s")
}

func BenchmarkFig6_JanitorRuntimeCDF(b *testing.B) {
	r := sharedRun(b)
	d := r.ComputeDurations()
	for i := 0; i < b.N; i++ {
		_ = d.Fig6()
	}
	cdf := d.Fig6()
	b.ReportMetric(100*cdf.FractionAtOrBelow(60), "pct<=60s")
	b.ReportMetric(cdf.Max(), "max-s")
}

func BenchmarkSummary_Certification(b *testing.B) {
	r := sharedRun(b)
	for i := 0; i < b.N; i++ {
		_ = r.ComputeSummary()
	}
	s := r.ComputeSummary()
	b.ReportMetric(pctm(s.CertifiedAll, s.TotalAll), "certified-%")
	b.ReportMetric(pctm(s.CertifiedJanitor, s.TotalJanitor), "janitor-certified-%")
	b.ReportMetric(pctm(s.Untreatable, s.TotalAll), "untreatable-%")
}

func pctm(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// --- Pipeline benchmarks ---

// BenchmarkCheckCommit measures one end-to-end JMake check.
func BenchmarkCheckCommit(b *testing.B) {
	tree, man, err := jmake.GenerateKernel(11, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	hist, err := jmake.SynthesizeHistory(tree, man, 12, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	ids, _ := hist.Repo.Between("v4.3", "v4.4", jmake.ModifyingNonMerge)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jmake.CheckCommit(hist.Repo, ids[i%len(ids)], jmake.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateKernel measures substrate generation.
func BenchmarkGenerateKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := jmake.GenerateKernel(int64(i), 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the substrate ---

func BenchmarkMutationEngine(b *testing.B) {
	tree, man, err := kernelgen.Generate(kernelgen.Params{Seed: 13, Scale: 0.15})
	if err != nil {
		b.Fatal(err)
	}
	content, err := tree.Read(man.Drivers[0].CFile)
	if err != nil {
		b.Fatal(err)
	}
	lines := []int{5, 20, 40}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Mutate(man.Drivers[0].CFile, content, lines)
		if len(res.Mutations) == 0 {
			b.Fatal("no mutations")
		}
	}
}

func BenchmarkPreprocess(b *testing.B) {
	tree, man, err := kernelgen.Generate(kernelgen.Params{Seed: 13, Scale: 0.15})
	if err != nil {
		b.Fatal(err)
	}
	src := kbuild.TreeSource{T: tree}
	opts := cpp.Options{
		IncludeDirs: []string{"arch/x86_64/include", "include"},
		Defines:     map[string]string{"__KERNEL__": "1", "__x86_64__": "1"},
	}
	path := man.Drivers[0].CFile
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpp.Preprocess(src, path, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileFrontEnd(b *testing.B) {
	tree, man, err := kernelgen.Generate(kernelgen.Params{Seed: 13, Scale: 0.15})
	if err != nil {
		b.Fatal(err)
	}
	src := kbuild.TreeSource{T: tree}
	res, err := cpp.Preprocess(src, man.Drivers[0].CFile, cpp.Options{
		IncludeDirs: []string{"arch/x86_64/include", "include"},
		Defines:     map[string]string{"__KERNEL__": "1", "__x86_64__": "1"},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cc.Compile(res.Output); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllYesConfig(b *testing.B) {
	tree, _, err := kernelgen.Generate(kernelgen.Params{Seed: 13, Scale: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	kt, err := kconfig.Parse(kbuild.TreeSource{T: tree}, "arch/x86_64/Kconfig")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(kt.Len()), "symbols")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := kt.AllYesConfig()
		if cfg.EnabledCount() == 0 {
			b.Fatal("empty config")
		}
	}
}

func BenchmarkMyersDiff(b *testing.B) {
	oldText := strings.Repeat("line one\nline two\nline three\n", 60)
	newText := strings.Replace(oldText, "line two", "line 2", 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, changed := textdiff.Diff("f", "f", oldText, newText); !changed {
			b.Fatal("no diff")
		}
	}
}
