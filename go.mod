module jmake

go 1.22
